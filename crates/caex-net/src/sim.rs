//! The deterministic discrete-event network simulator.

use crate::{
    FaultEvent, FaultPlan, Kinded, LatencyModel, NetStats, NodeId, SimTime, TraceEvent,
    TraceEventKind, TraceLog,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Configuration of a [`SimNet`].
///
/// # Examples
///
/// ```
/// use caex_net::{LatencyModel, NetConfig, SimTime};
///
/// let config = NetConfig::default()
///     .with_latency(LatencyModel::Constant(SimTime::from_micros(250)))
///     .with_seed(42)
///     .with_trace(true);
/// assert_eq!(config.seed, 42);
/// ```
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// In-flight time model for remote messages.
    pub latency: LatencyModel,
    /// Faults to inject (benign by default).
    pub faults: FaultPlan,
    /// Seed for the latency/fault RNG; equal seeds give equal runs.
    pub seed: u64,
    /// Whether to record a full [`TraceLog`].
    pub record_trace: bool,
    /// Per-ordered-pair FIFO delivery (default `true` — the §4.2
    /// substrate assumption). Setting `false` lets a later message
    /// overtake an earlier one on the same channel; protocols that rely
    /// on FIFO (the resolution algorithm does) may then misbehave —
    /// that is the point of the ablation.
    pub fifo: bool,
    /// Link bandwidth in bytes per millisecond; `None` = unlimited.
    /// When set, each message adds `wire_len / bandwidth` of
    /// serialization delay on top of the latency model (§2.1's
    /// "relatively narrow bandwidth communication channels").
    pub bandwidth_bytes_per_ms: Option<u64>,
    /// Per-ordered-pair latency overrides (heterogeneous topologies:
    /// a WAN link between two LAN clusters, one slow node, …); pairs
    /// not listed use [`Self::latency`].
    pub link_latency: Vec<(NodeId, NodeId, LatencyModel)>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency: LatencyModel::default(),
            faults: FaultPlan::none(),
            seed: 0,
            record_trace: false,
            fifo: true,
            bandwidth_bytes_per_ms: None,
            link_latency: Vec::new(),
        }
    }
}

impl NetConfig {
    /// Replaces the latency model.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Replaces the fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables trace recording.
    #[must_use]
    pub fn with_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Enables or disables per-channel FIFO ordering (ablation knob;
    /// the resolution algorithm assumes FIFO).
    #[must_use]
    pub fn with_fifo(mut self, fifo: bool) -> Self {
        self.fifo = fifo;
        self
    }

    /// Limits link bandwidth (bytes per millisecond); each message then
    /// pays `wire_len / bandwidth` of serialization delay.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_ms` is zero.
    #[must_use]
    pub fn with_bandwidth(mut self, bytes_per_ms: u64) -> Self {
        assert!(bytes_per_ms > 0, "bandwidth must be positive");
        self.bandwidth_bytes_per_ms = Some(bytes_per_ms);
        self
    }

    /// Overrides the latency model of the ordered link `from → to`
    /// (call twice for a symmetric override).
    #[must_use]
    pub fn with_link_latency(mut self, from: NodeId, to: NodeId, model: LatencyModel) -> Self {
        self.link_latency.push((from, to, model));
        self
    }
}

/// Where a delivered payload came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliverySource {
    /// A remote message sent by this node.
    Remote(NodeId),
    /// A locally scheduled event (timer, scenario step).
    Local,
}

/// One payload handed to a node by [`SimNet::next_delivery`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<M> {
    /// Virtual time of delivery; the simulator clock equals this.
    pub at: SimTime,
    /// The receiving node.
    pub to: NodeId,
    /// Remote sender or local event.
    pub source: DeliverySource,
    /// The message or event payload.
    pub payload: M,
}

#[derive(Debug)]
struct Queued<M> {
    at: SimTime,
    seq: u64,
    to: NodeId,
    source: DeliverySource,
    payload: M,
    label: &'static str,
}

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest
        // sequence number) event pops first. Sequence numbers are unique,
        // making the order total and runs deterministic.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic discrete-event message-passing network.
///
/// Guarantees, matching the paper's §4.2 substrate assumptions:
///
/// - **Reliable delivery** (with the default benign [`FaultPlan`]);
/// - **FIFO per ordered pair**: if `a` sends `m1` then `m2` to `b`, `b`
///   receives `m1` first, even under random latency jitter;
/// - **Determinism**: equal configs, seeds and send sequences produce
///   identical delivery sequences and timestamps.
///
/// The simulator is *passive*: it never invokes user code. Callers pull
/// deliveries with [`next_delivery`](Self::next_delivery) and feed them
/// to their own state machines, which keeps the borrow structure simple
/// and makes every interleaving decision explicit and reproducible.
///
/// # Examples
///
/// ```
/// use caex_net::{NetConfig, NodeId, SimNet, SimTime};
///
/// let mut net: SimNet<&'static str> = SimNet::new(NetConfig::default(), 3);
/// net.schedule_local(SimTime::from_micros(10), NodeId::new(2), "tick");
/// net.send(NodeId::new(0), NodeId::new(1), "hello");
///
/// while let Some(d) = net.next_delivery() {
///     println!("{} got {} at {}", d.to, d.payload, d.at);
/// }
/// assert!(net.is_quiescent());
/// ```
#[derive(Debug)]
pub struct SimNet<M> {
    config: NetConfig,
    now: SimTime,
    queue: BinaryHeap<Queued<M>>,
    /// Earliest permissible delivery time per ordered (from, to) pair;
    /// enforces FIFO under jittery latency models.
    channel_clock: HashMap<(NodeId, NodeId), SimTime>,
    next_seq: u64,
    num_nodes: u32,
    rng: StdRng,
    stats: NetStats,
    trace: TraceLog,
    delivered_count: u64,
    /// Nodes whose return from a crash-with-restart down-window has
    /// already been recorded (the `Restarted` fault fires once).
    restart_logged: std::collections::HashSet<NodeId>,
}

impl<M> SimNet<M> {
    /// Creates a network of `num_nodes` nodes (ids `0..num_nodes`).
    #[must_use]
    pub fn new(config: NetConfig, num_nodes: u32) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        SimNet {
            config,
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            channel_clock: HashMap::new(),
            next_seq: 0,
            num_nodes,
            rng,
            stats: NetStats::default(),
            trace: TraceLog::default(),
            delivered_count: 0,
            restart_logged: std::collections::HashSet::new(),
        }
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes in the network.
    #[must_use]
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes).map(NodeId::new)
    }

    /// `true` once `node` has passed its scheduled crash time, or while
    /// it is inside a crash-with-restart down-window.
    #[must_use]
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.config
            .faults
            .crashes_at(node)
            .is_some_and(|at| at <= self.now)
            || self.config.faults.is_down(node, self.now)
    }

    /// `true` when no events remain in flight.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of events currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Total deliveries performed so far.
    #[must_use]
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// Accumulated per-kind statistics.
    #[must_use]
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The recorded trace (empty unless `record_trace` was set).
    #[must_use]
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    fn assert_node(&self, node: NodeId) {
        assert!(
            node.index() < self.num_nodes,
            "node {node} outside network of {} nodes",
            self.num_nodes
        );
    }

    fn record(&mut self, at: SimTime, kind: TraceEventKind, from: NodeId, to: NodeId, label: &str) {
        if self.config.record_trace {
            self.trace.push(TraceEvent {
                at,
                kind,
                from,
                to,
                label: label.to_owned(),
            });
        }
    }

    fn enqueue(
        &mut self,
        at: SimTime,
        to: NodeId,
        source: DeliverySource,
        payload: M,
        label: &'static str,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Queued {
            at,
            seq,
            to,
            source,
            payload,
            label,
        });
        let in_flight = self.queue.len();
        self.stats.observe_in_flight(in_flight);
    }
}

impl<M: Kinded> SimNet<M> {
    /// Schedules a local event at absolute virtual time `at` (clamped to
    /// "now" if already past). Local events do not count as messages.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the network.
    pub fn schedule_local(&mut self, at: SimTime, node: NodeId, payload: M) {
        self.assert_node(node);
        let at = at.max(self.now);
        let kind = payload.kind();
        self.enqueue(at, node, DeliverySource::Local, payload, kind);
    }

    /// Schedules a local event `delay` after the current time.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the network.
    pub fn schedule_local_in(&mut self, delay: SimTime, node: NodeId, payload: M) {
        self.schedule_local(self.now + delay, node, payload);
    }
}

impl<M: Kinded + Clone> SimNet<M> {
    /// Sends `payload` from `from` to `to`, subject to the latency model
    /// and fault plan. Self-sends are permitted (delivered like any other
    /// message).
    ///
    /// # Panics
    ///
    /// Panics if either node is outside the network.
    pub fn send(&mut self, from: NodeId, to: NodeId, payload: M) {
        self.assert_node(from);
        self.assert_node(to);
        let kind = payload.kind();

        if self.is_crashed(from) {
            self.stats.record_fault(FaultEvent::SourceCrashed.label());
            self.record(
                self.now,
                TraceEventKind::Fault(FaultEvent::SourceCrashed),
                from,
                to,
                kind,
            );
            return;
        }

        self.stats.record_send(kind);
        self.stats.record_channel(from, to);
        let action = payload.action_index();
        if let Some(a) = action {
            self.stats.record_action_send(a);
        }
        self.record(self.now, TraceEventKind::Sent, from, to, kind);

        // Partitions sever at send time: messages already in flight
        // when a partition begins still arrive (they left the sender).
        if self.config.faults.is_partitioned(from, to, self.now) {
            self.stats.record_drop(kind);
            if let Some(a) = action {
                self.stats.record_action_drop(a);
            }
            self.stats.record_fault(FaultEvent::Partitioned.label());
            self.record(
                self.now,
                TraceEventKind::Fault(FaultEvent::Partitioned),
                from,
                to,
                kind,
            );
            return;
        }

        if self.config.faults.drop_probability() > 0.0
            && self.rng.gen_bool(self.config.faults.drop_probability())
        {
            self.stats.record_drop(kind);
            if let Some(a) = action {
                self.stats.record_action_drop(a);
            }
            self.stats.record_fault(FaultEvent::Dropped.label());
            self.record(
                self.now,
                TraceEventKind::Fault(FaultEvent::Dropped),
                from,
                to,
                kind,
            );
            return;
        }

        let duplicate = self.config.faults.duplicate_probability() > 0.0
            && self
                .rng
                .gen_bool(self.config.faults.duplicate_probability());

        let wire_len = payload.wire_len();
        self.enqueue_remote(from, to, payload.clone(), kind, wire_len);
        if duplicate {
            self.stats.record_fault(FaultEvent::Duplicated.label());
            self.record(
                self.now,
                TraceEventKind::Fault(FaultEvent::Duplicated),
                from,
                to,
                kind,
            );
            self.enqueue_remote(from, to, payload, kind, wire_len);
        }
    }

    fn enqueue_remote(
        &mut self,
        from: NodeId,
        to: NodeId,
        payload: M,
        kind: &'static str,
        wire_len: usize,
    ) {
        let model = self
            .config
            .link_latency
            .iter()
            .find(|(f, t, _)| *f == from && *t == to)
            .map_or(self.config.latency, |&(_, _, m)| m);
        let mut latency = model.sample(&mut self.rng);
        let slowdown = self.config.faults.slowdown_at(self.now);
        if slowdown > 1 {
            latency = SimTime::from_micros(latency.as_micros().saturating_mul(slowdown));
        }
        let mut at = self.now + latency;
        if let Some(bandwidth) = self.config.bandwidth_bytes_per_ms {
            // Serialization delay: micros = bytes * 1000 / (bytes/ms).
            let micros = (wire_len as u64 * 1_000).div_ceil(bandwidth);
            at += SimTime::from_micros(micros);
        }
        // Healing partition: a send crossing the boundary is buffered
        // by the transport and retransmitted when the partition heals —
        // deferred, not dropped. Applied before the FIFO clamp so later
        // sends on the channel cannot overtake the deferred backlog.
        if let Some(healed) = self.config.faults.heal_deferral(from, to, self.now) {
            self.stats.record_fault(FaultEvent::PartitionHealed.label());
            self.stats.record_recovery("replayed_frame");
            self.record(
                self.now,
                TraceEventKind::Fault(FaultEvent::PartitionHealed),
                from,
                to,
                kind,
            );
            at = at.max(healed);
        }
        // Bounded reordering: with probability p this message escapes
        // the channel's FIFO clamp and gains up to `reorder_window` of
        // extra delay — it may overtake later sends or fall behind
        // earlier ones, violating exactly the §2.1 FIFO assumption.
        let reordered = self.config.faults.reorder_probability() > 0.0
            && self.rng.gen_bool(self.config.faults.reorder_probability());
        if reordered {
            let window = self.config.faults.reorder_window().as_micros();
            if window > 0 {
                at += SimTime::from_micros(self.rng.gen_range(0..=window));
            }
            self.stats.record_fault(FaultEvent::Reordered.label());
            self.record(
                self.now,
                TraceEventKind::Fault(FaultEvent::Reordered),
                from,
                to,
                kind,
            );
        } else if self.config.fifo {
            let channel = (from, to);
            let earliest = self
                .channel_clock
                .get(&channel)
                .copied()
                .unwrap_or(SimTime::ZERO);
            // FIFO: a later send on the same channel may not arrive
            // before an earlier one, whatever latency it drew.
            at = at.max(earliest);
            self.channel_clock.insert(channel, at);
        }
        // Clock freeze: a delivery landing inside the destination's
        // freeze window waits until the process "resumes".
        if let Some(resumed) = self.config.faults.freeze_deferral(to, at) {
            self.stats.record_fault(FaultEvent::ClockFrozen.label());
            self.record(
                self.now,
                TraceEventKind::Fault(FaultEvent::ClockFrozen),
                from,
                to,
                kind,
            );
            at = resumed;
        }
        self.enqueue(at, to, DeliverySource::Remote(from), payload, kind);
    }

    /// Sends `payload` from `from` to every node in `to` (cloned per
    /// destination). Order of sends follows the iterator.
    ///
    /// # Panics
    ///
    /// Panics if any node is outside the network.
    pub fn broadcast<I>(&mut self, from: NodeId, to: I, payload: M)
    where
        I: IntoIterator<Item = NodeId>,
    {
        for dest in to {
            self.send(from, dest, payload.clone());
        }
    }

    /// Pops the next event, advancing the virtual clock to its time.
    ///
    /// Deliveries to crashed nodes are suppressed (traced as
    /// [`FaultEvent::DestinationCrashed`]) and the following event is
    /// tried, so `None` really means quiescence.
    pub fn next_delivery(&mut self) -> Option<Delivery<M>> {
        while let Some(ev) = self.queue.pop() {
            debug_assert!(ev.at >= self.now, "time went backwards");
            self.now = ev.at;
            // First event a restarted node lives through: note that the
            // "zombie" is back (its messages now test commit fencing).
            if !self.is_crashed(ev.to)
                && self
                    .config
                    .faults
                    .restarts()
                    .any(|(n, _, up)| n == ev.to && up <= ev.at)
                && self.restart_logged.insert(ev.to)
            {
                self.stats.record_fault(FaultEvent::Restarted.label());
                self.record(
                    ev.at,
                    TraceEventKind::Fault(FaultEvent::Restarted),
                    ev.to,
                    ev.to,
                    ev.label,
                );
            }
            if let DeliverySource::Remote(from) = ev.source {
                if self.is_crashed(ev.to) {
                    self.stats.record_drop(ev.label);
                    if let Some(a) = ev.payload.action_index() {
                        self.stats.record_action_drop(a);
                    }
                    self.stats
                        .record_fault(FaultEvent::DestinationCrashed.label());
                    self.record(
                        ev.at,
                        TraceEventKind::Fault(FaultEvent::DestinationCrashed),
                        from,
                        ev.to,
                        ev.label,
                    );
                    continue;
                }
                self.stats.record_delivery(ev.label);
                if let Some(a) = ev.payload.action_index() {
                    self.stats.record_action_delivery(a);
                }
                self.record(ev.at, TraceEventKind::Delivered, from, ev.to, ev.label);
            } else {
                if self.is_crashed(ev.to) {
                    self.stats
                        .record_fault(FaultEvent::DestinationCrashed.label());
                    self.record(
                        ev.at,
                        TraceEventKind::Fault(FaultEvent::DestinationCrashed),
                        ev.to,
                        ev.to,
                        ev.label,
                    );
                    continue;
                }
                self.record(ev.at, TraceEventKind::LocalEvent, ev.to, ev.to, ev.label);
            }
            self.delivered_count += 1;
            return Some(Delivery {
                at: ev.at,
                to: ev.to,
                source: ev.source,
                payload: ev.payload,
            });
        }
        None
    }

    /// Drains the network to quiescence, collecting every delivery —
    /// convenient when the caller only inspects the schedule and never
    /// reacts to it.
    ///
    /// # Examples
    ///
    /// ```
    /// use caex_net::{NetConfig, NodeId, SimNet};
    ///
    /// let mut net: SimNet<&'static str> = SimNet::new(NetConfig::default(), 2);
    /// net.send(NodeId::new(0), NodeId::new(1), "a");
    /// net.send(NodeId::new(1), NodeId::new(0), "b");
    /// let all = net.drain();
    /// assert_eq!(all.len(), 2);
    /// assert!(net.is_quiescent());
    /// ```
    pub fn drain(&mut self) -> Vec<Delivery<M>> {
        std::iter::from_fn(|| self.next_delivery()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(latency: LatencyModel, seed: u64) -> SimNet<&'static str> {
        SimNet::new(
            NetConfig::default()
                .with_latency(latency)
                .with_seed(seed)
                .with_trace(true),
            4,
        )
    }

    #[test]
    fn delivers_in_time_order() {
        let mut n = net(LatencyModel::Constant(SimTime::from_micros(10)), 0);
        n.schedule_local(SimTime::from_micros(5), NodeId::new(0), "early");
        n.send(NodeId::new(0), NodeId::new(1), "later"); // arrives at 10
        let first = n.next_delivery().unwrap();
        let second = n.next_delivery().unwrap();
        assert_eq!(first.payload, "early");
        assert_eq!(second.payload, "later");
        assert_eq!(n.now(), SimTime::from_micros(10));
    }

    #[test]
    fn fifo_holds_under_jitter() {
        let mut n = net(
            LatencyModel::Uniform {
                min: SimTime::from_micros(1),
                max: SimTime::from_micros(1000),
            },
            123,
        );
        for _ in 0..50 {
            n.send(NodeId::new(0), NodeId::new(1), "a");
        }
        let mut count = 0;
        let mut last = SimTime::ZERO;
        while let Some(d) = n.next_delivery() {
            assert!(d.at >= last);
            last = d.at;
            count += 1;
        }
        assert_eq!(count, 50);
    }

    #[test]
    fn fifo_across_interleaved_kinds() {
        let mut n = net(
            LatencyModel::Uniform {
                min: SimTime::ZERO,
                max: SimTime::from_micros(500),
            },
            7,
        );
        n.send(NodeId::new(2), NodeId::new(3), "first");
        n.send(NodeId::new(2), NodeId::new(3), "second");
        n.send(NodeId::new(2), NodeId::new(3), "third");
        let order: Vec<_> = std::iter::from_fn(|| n.next_delivery())
            .map(|d| d.payload)
            .collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn determinism_under_equal_seeds() {
        let run = |seed| {
            let mut n = net(
                LatencyModel::Uniform {
                    min: SimTime::ZERO,
                    max: SimTime::from_micros(100),
                },
                seed,
            );
            n.send(NodeId::new(0), NodeId::new(1), "x");
            n.send(NodeId::new(1), NodeId::new(2), "y");
            n.send(NodeId::new(2), NodeId::new(0), "z");
            std::iter::from_fn(|| n.next_delivery())
                .map(|d| (d.at, d.to, d.payload))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(99), run(99));
    }

    #[test]
    fn broadcast_reaches_all_targets() {
        let mut n = net(LatencyModel::zero(), 0);
        let targets: Vec<_> = (1..4).map(NodeId::new).collect();
        n.broadcast(NodeId::new(0), targets.iter().copied(), "hi");
        let mut seen = Vec::new();
        while let Some(d) = n.next_delivery() {
            seen.push(d.to);
        }
        assert_eq!(seen, targets);
        assert_eq!(n.stats().sent_of_kind("hi"), 3);
    }

    #[test]
    fn stats_track_send_and_delivery() {
        let mut n = net(LatencyModel::zero(), 0);
        n.send(NodeId::new(0), NodeId::new(1), "ping");
        assert_eq!(n.stats().sent_total(), 1);
        assert_eq!(n.stats().delivered_total(), 0);
        n.next_delivery().unwrap();
        assert_eq!(n.stats().delivered_total(), 1);
        assert_eq!(n.delivered_count(), 1);
    }

    #[test]
    fn drop_fault_loses_messages() {
        let config = NetConfig::default()
            .with_faults(FaultPlan::none().with_drop_probability(1.0))
            .with_trace(true);
        let mut n: SimNet<&'static str> = SimNet::new(config, 2);
        n.send(NodeId::new(0), NodeId::new(1), "gone");
        assert!(n.next_delivery().is_none());
        assert_eq!(n.stats().dropped_total(), 1);
        assert_eq!(n.stats().sent_total(), 1);
        let faults: Vec<_> = n
            .trace()
            .of_kind(&TraceEventKind::Fault(FaultEvent::Dropped))
            .collect();
        assert_eq!(faults.len(), 1);
    }

    #[test]
    fn duplicate_fault_delivers_twice() {
        let config = NetConfig::default()
            .with_faults(FaultPlan::none().with_duplicate_probability(1.0))
            .with_latency(LatencyModel::zero());
        let mut n: SimNet<&'static str> = SimNet::new(config, 2);
        n.send(NodeId::new(0), NodeId::new(1), "twice");
        let mut count = 0;
        while n.next_delivery().is_some() {
            count += 1;
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn crashed_source_sends_nothing() {
        let config = NetConfig::default()
            .with_faults(FaultPlan::none().with_crash(NodeId::new(0), SimTime::ZERO));
        let mut n: SimNet<&'static str> = SimNet::new(config, 2);
        n.send(NodeId::new(0), NodeId::new(1), "never");
        assert!(n.next_delivery().is_none());
        assert_eq!(n.stats().sent_total(), 0);
    }

    #[test]
    fn crashed_destination_receives_nothing() {
        let config = NetConfig::default()
            .with_latency(LatencyModel::Constant(SimTime::from_micros(100)))
            .with_faults(FaultPlan::none().with_crash(NodeId::new(1), SimTime::from_micros(50)));
        let mut n: SimNet<&'static str> = SimNet::new(config, 2);
        n.send(NodeId::new(0), NodeId::new(1), "late");
        // Crash (t=50) precedes delivery (t=100): suppressed.
        assert!(n.next_delivery().is_none());
        assert_eq!(n.stats().dropped_total(), 1);
    }

    #[test]
    fn crash_only_takes_effect_at_its_time() {
        let config = NetConfig::default()
            .with_latency(LatencyModel::Constant(SimTime::from_micros(10)))
            .with_faults(FaultPlan::none().with_crash(NodeId::new(1), SimTime::from_micros(50)));
        let mut n: SimNet<&'static str> = SimNet::new(config, 2);
        n.send(NodeId::new(0), NodeId::new(1), "early");
        assert!(n.next_delivery().is_some());
    }

    #[test]
    fn local_events_are_not_messages() {
        let mut n = net(LatencyModel::zero(), 0);
        n.schedule_local(SimTime::from_micros(3), NodeId::new(2), "tick");
        let d = n.next_delivery().unwrap();
        assert_eq!(d.source, DeliverySource::Local);
        assert_eq!(n.stats().sent_total(), 0);
        assert_eq!(n.stats().delivered_total(), 0);
    }

    #[test]
    fn local_events_clamp_to_now() {
        let mut n = net(LatencyModel::Constant(SimTime::from_micros(100)), 0);
        n.send(NodeId::new(0), NodeId::new(1), "advance-clock");
        n.next_delivery().unwrap();
        assert_eq!(n.now(), SimTime::from_micros(100));
        n.schedule_local(SimTime::from_micros(5), NodeId::new(0), "past");
        let d = n.next_delivery().unwrap();
        assert_eq!(d.at, SimTime::from_micros(100));
    }

    #[test]
    #[should_panic(expected = "outside network")]
    fn send_to_unknown_node_panics() {
        let mut n = net(LatencyModel::zero(), 0);
        n.send(NodeId::new(0), NodeId::new(99), "bad");
    }

    #[test]
    fn quiescence_reports_correctly() {
        let mut n = net(LatencyModel::zero(), 0);
        assert!(n.is_quiescent());
        n.send(NodeId::new(0), NodeId::new(1), "m");
        assert!(!n.is_quiescent());
        assert_eq!(n.in_flight(), 1);
        n.next_delivery().unwrap();
        assert!(n.is_quiescent());
    }

    #[test]
    fn trace_records_send_and_delivery() {
        let mut n = net(LatencyModel::zero(), 0);
        n.send(NodeId::new(0), NodeId::new(1), "traced");
        n.next_delivery().unwrap();
        assert_eq!(n.trace().of_kind(&TraceEventKind::Sent).count(), 1);
        assert_eq!(n.trace().of_kind(&TraceEventKind::Delivered).count(), 1);
    }

    #[test]
    fn link_latency_override_applies_to_that_link_only() {
        let config = NetConfig::default()
            .with_latency(LatencyModel::Constant(SimTime::from_micros(100)))
            .with_link_latency(
                NodeId::new(0),
                NodeId::new(1),
                LatencyModel::Constant(SimTime::from_millis(5)),
            );
        let mut n: SimNet<&'static str> = SimNet::new(config, 3);
        n.send(NodeId::new(0), NodeId::new(1), "wan");
        n.send(NodeId::new(0), NodeId::new(2), "lan");
        n.send(NodeId::new(1), NodeId::new(0), "reverse-lan");
        let delivered = n.drain();
        let at = |payload: &str| delivered.iter().find(|d| d.payload == payload).unwrap().at;
        assert_eq!(at("wan"), SimTime::from_millis(5));
        assert_eq!(at("lan"), SimTime::from_micros(100));
        // The override is directional.
        assert_eq!(at("reverse-lan"), SimTime::from_micros(100));
    }

    #[test]
    fn slowdown_window_stretches_latency() {
        let config = NetConfig::default()
            .with_latency(LatencyModel::Constant(SimTime::from_micros(100)))
            .with_faults(FaultPlan::none().with_slowdown(
                5,
                SimTime::ZERO,
                SimTime::from_micros(50),
            ));
        let mut n: SimNet<&'static str> = SimNet::new(config, 2);
        // Sent at t=0, inside the window: 5 × 100µs.
        n.send(NodeId::new(0), NodeId::new(1), "slow");
        let d = n.next_delivery().unwrap();
        assert_eq!(d.at, SimTime::from_micros(500));
        // Sent at t=500, after the window: normal latency.
        n.send(NodeId::new(0), NodeId::new(1), "fast");
        let d = n.next_delivery().unwrap();
        assert_eq!(d.at, SimTime::from_micros(600));
    }

    #[test]
    fn bandwidth_adds_serialization_delay() {
        // 16-byte default payload at 1 byte/ms = 16ms extra.
        let config = NetConfig::default()
            .with_latency(LatencyModel::Constant(SimTime::from_micros(100)))
            .with_bandwidth(1);
        let mut n: SimNet<&'static str> = SimNet::new(config, 2);
        n.send(NodeId::new(0), NodeId::new(1), "x");
        let d = n.next_delivery().unwrap();
        assert_eq!(d.at, SimTime::from_micros(100) + SimTime::from_millis(16));
    }

    #[test]
    fn unlimited_bandwidth_charges_nothing() {
        let config =
            NetConfig::default().with_latency(LatencyModel::Constant(SimTime::from_micros(100)));
        let mut n: SimNet<&'static str> = SimNet::new(config, 2);
        n.send(NodeId::new(0), NodeId::new(1), "x");
        assert_eq!(n.next_delivery().unwrap().at, SimTime::from_micros(100));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = NetConfig::default().with_bandwidth(0);
    }

    #[test]
    fn partition_drops_cross_group_sends_in_window() {
        let config = NetConfig::default()
            .with_latency(LatencyModel::zero())
            .with_faults(FaultPlan::none().with_partition(
                [NodeId::new(0)],
                SimTime::ZERO,
                SimTime::from_micros(100),
            ))
            .with_trace(true);
        let mut n: SimNet<&'static str> = SimNet::new(config, 3);
        n.send(NodeId::new(0), NodeId::new(1), "cut");
        n.send(NodeId::new(1), NodeId::new(2), "same-side");
        assert_eq!(n.stats().dropped_of_kind("cut"), 1);
        let delivered: Vec<_> = std::iter::from_fn(|| n.next_delivery())
            .map(|d| d.payload)
            .collect();
        assert_eq!(delivered, vec!["same-side"]);
        // After the window heals, the link works again.
        n.schedule_local(SimTime::from_micros(200), NodeId::new(0), "tick");
        n.next_delivery().unwrap();
        n.send(NodeId::new(0), NodeId::new(1), "healed");
        assert_eq!(n.next_delivery().unwrap().payload, "healed");
    }

    #[test]
    fn self_send_is_delivered() {
        let mut n = net(LatencyModel::zero(), 0);
        n.send(NodeId::new(1), NodeId::new(1), "loop");
        let d = n.next_delivery().unwrap();
        assert_eq!(d.to, NodeId::new(1));
        assert_eq!(d.source, DeliverySource::Remote(NodeId::new(1)));
    }

    #[test]
    fn reorder_window_can_invert_fifo_order() {
        // p = 1: every message escapes the clamp. With jittery latency a
        // later send can overtake an earlier one — impossible under the
        // default FIFO regime (see `delivers_in_time_order`).
        let config = NetConfig::default()
            .with_latency(LatencyModel::Uniform {
                min: SimTime::from_micros(10),
                max: SimTime::from_micros(500),
            })
            .with_seed(7)
            .with_faults(FaultPlan::none().with_reorder_window(1.0, SimTime::from_micros(2_000)));
        let mut n: SimNet<&'static str> = SimNet::new(config, 2);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let labels = ["m0", "m1", "m2", "m3", "m4", "m5", "m6", "m7"];
        for l in labels {
            n.send(a, b, l);
        }
        let got: Vec<_> = n.drain().into_iter().map(|d| d.payload).collect();
        assert_eq!(got.len(), labels.len(), "reordering never loses messages");
        assert_ne!(got, labels.to_vec(), "at least one inversion occurred");
        assert_eq!(n.stats().fault_of_kind("reordered"), labels.len() as u64);
    }

    #[test]
    fn clock_freeze_defers_deliveries_to_window_end() {
        let frozen = NodeId::new(1);
        let config = NetConfig::default()
            .with_latency(LatencyModel::Constant(SimTime::from_micros(10)))
            .with_faults(FaultPlan::none().with_clock_freeze(
                frozen,
                SimTime::ZERO,
                SimTime::from_micros(300),
            ));
        let mut n: SimNet<&'static str> = SimNet::new(config, 3);
        n.send(NodeId::new(0), frozen, "stalled");
        n.send(NodeId::new(0), NodeId::new(2), "prompt");
        let first = n.next_delivery().unwrap();
        assert_eq!(first.payload, "prompt");
        assert_eq!(first.at, SimTime::from_micros(10));
        let second = n.next_delivery().unwrap();
        assert_eq!(second.payload, "stalled");
        assert_eq!(second.at, SimTime::from_micros(300));
        assert_eq!(n.stats().fault_of_kind("clock_frozen"), 1);
    }

    #[test]
    fn restart_loses_downtime_messages_then_resumes() {
        let victim = NodeId::new(1);
        let config = NetConfig::default()
            .with_latency(LatencyModel::Constant(SimTime::from_micros(10)))
            .with_faults(FaultPlan::none().with_restart(
                victim,
                SimTime::from_micros(5),
                SimTime::from_micros(100),
            ));
        let mut n: SimNet<&'static str> = SimNet::new(config, 2);
        // Lands at t=10, inside the down-window: lost.
        n.send(NodeId::new(0), victim, "lost");
        assert!(n.next_delivery().is_none());
        assert_eq!(n.stats().fault_of_kind("destination_crashed"), 1);
        // The node itself cannot send while down.
        n.schedule_local(SimTime::from_micros(50), NodeId::new(0), "tick");
        n.next_delivery().unwrap();
        n.send(victim, NodeId::new(0), "from-zombie");
        assert_eq!(n.stats().fault_of_kind("source_crashed"), 1);
        // After up_at the node receives again and the resume is noted.
        n.schedule_local(SimTime::from_micros(200), NodeId::new(0), "tock");
        n.next_delivery().unwrap();
        n.send(NodeId::new(0), victim, "back");
        let d = n.next_delivery().unwrap();
        assert_eq!(d.payload, "back");
        assert!(!n.is_crashed(victim));
        assert_eq!(n.stats().fault_of_kind("restarted"), 1);
    }
}
