//! The FIFO-channel contract shared by every real transport.
//!
//! The paper's algorithm assumes exactly one thing of its network
//! (§4.2): reliable FIFO message passing between objects. [`FifoPort`]
//! captures that contract so the participant driver loop can run
//! unchanged over in-process crossbeam channels
//! ([`NodePort`](crate::NodePort)) or over real sockets
//! (`caex-wire`'s `WirePort`), and so tests can substitute fakes.

use crate::{NodeId, RecvTimeoutError};
use std::time::Duration;

/// One node's endpoint in a fully connected FIFO network.
///
/// Contract:
///
/// - **Per-sender FIFO**: two messages sent by the same node to the
///   same destination are delivered in send order.
/// - **Reliability while up**: a message to a live peer is eventually
///   delivered; [`FifoPort::send`] returning `false` means the peer is
///   known to be down (the message is dropped and accounted).
/// - **Crash surfacing**: transports that can detect peer crashes
///   (heartbeat timeout, connection teardown) report them through
///   [`FifoPort::take_crashed`]; in-process transports never do.
pub trait FifoPort<M> {
    /// This port's node id.
    fn id(&self) -> NodeId;

    /// Number of nodes in the network.
    fn num_nodes(&self) -> u32;

    /// Sends `payload` to `to`; `false` if the peer is known dead.
    fn send(&self, to: NodeId, payload: M) -> bool;

    /// Blocks until a message arrives or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] when nothing arrived in time;
    /// [`RecvTimeoutError::Disconnected`] when no message can ever
    /// arrive again.
    fn recv_timeout(&self, timeout: Duration) -> Result<(NodeId, M), RecvTimeoutError>;

    /// Peers newly detected as crashed since the last call. Each
    /// crashed peer is reported exactly once; transports without
    /// failure detection return an empty list (the default).
    ///
    /// Transports with an *accrual* detector report here only peers
    /// whose death is **confirmed** (suspicion sustained across polls,
    /// or hard evidence like a torn-down connection that would not
    /// redial); mere latency spikes surface through
    /// [`FifoPort::take_suspected`] instead.
    fn take_crashed(&self) -> Vec<NodeId> {
        Vec::new()
    }

    /// Peers newly *suspected* (silence beyond the detector's
    /// suspicion threshold, but not yet confirmed dead) since the last
    /// call. A peer may be reported here, recover, and be reported
    /// again — unlike [`FifoPort::take_crashed`] this is not
    /// once-only. Transports without an accrual detector return an
    /// empty list (the default).
    fn take_suspected(&self) -> Vec<NodeId> {
        Vec::new()
    }

    /// Previously suspected peers heard from again (a suspicion flap)
    /// since the last call — the cue for a survivor to run a
    /// commit-forwarding round toward the returning peer. Transports
    /// without reconnect support return an empty list (the default).
    fn take_rejoined(&self) -> Vec<NodeId> {
        Vec::new()
    }

    /// Called once when the node stops: drains messages still sitting
    /// in the inbox, accounting each as a drop rather than a delivery,
    /// and returns how many were drained. Transports without such
    /// accounting return `0` (the default).
    fn drain_undelivered(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadNet;

    /// The generic driver pattern: a function constrained to the trait
    /// works over `NodePort`.
    fn ping<P: FifoPort<&'static str>>(a: &P, b: &P) {
        assert!(a.send(b.id(), "ping"));
        let (from, msg) = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(from, a.id());
        assert_eq!(msg, "ping");
        assert!(b.take_crashed().is_empty());
    }

    #[test]
    fn node_port_satisfies_the_contract() {
        let net: ThreadNet<&'static str> = ThreadNet::new(2);
        let ports = net.into_ports();
        assert_eq!(ports[0].num_nodes(), 2);
        ping(&ports[0], &ports[1]);
    }
}
