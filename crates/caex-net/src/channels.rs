//! Pure FIFO channel state, extracted from the simulator's delivery
//! machinery.
//!
//! [`SimNet`](crate::SimNet) *enforces* per-ordered-pair FIFO delivery
//! dynamically (latency jitter is clamped per channel so a later send
//! never overtakes an earlier one). [`ChannelState`] is the same
//! contract as a first-class value: the queue contents of every
//! `(from, to)` channel, with no clock, latency model or fault plan
//! attached. A transition system built on it — the `caex-lint` model
//! checker — explores *which* channel delivers next instead of letting
//! a latency sample decide, so one network abstraction underlies both
//! the simulator's single schedule and the checker's exhaustive set of
//! schedules.

use crate::NodeId;
use std::collections::{BTreeMap, VecDeque};

/// The in-flight messages of a fully connected FIFO network, as pure
/// data.
///
/// Channels are keyed by the ordered pair `(from, to)`; within a
/// channel, messages deliver in send order (the §4.2 assumption:
/// "reliable FIFO message passing between objects"). The structure is
/// `Clone`/`Eq`/`Hash` when the payload is, so checker states that
/// embed it can be canonicalized and deduplicated — iteration order is
/// deterministic by construction.
///
/// # Examples
///
/// ```
/// use caex_net::{ChannelState, NodeId};
///
/// let mut net: ChannelState<&'static str> = ChannelState::new();
/// let (a, b) = (NodeId::new(0), NodeId::new(1));
/// net.send(a, b, "ping");
/// net.send(a, b, "pong");
/// assert_eq!(net.pop(a, b), Some("ping"));
/// assert_eq!(net.pop(a, b), Some("pong"));
/// assert_eq!(net.pop(a, b), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ChannelState<M> {
    queues: BTreeMap<(NodeId, NodeId), VecDeque<M>>,
}

impl<M> ChannelState<M> {
    /// Creates an empty network: every channel empty.
    #[must_use]
    pub fn new() -> Self {
        ChannelState {
            queues: BTreeMap::new(),
        }
    }

    /// Appends `msg` to the back of the `(from, to)` channel.
    pub fn send(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.queues.entry((from, to)).or_default().push_back(msg);
    }

    /// Removes and returns the front of the `(from, to)` channel —
    /// the only message that channel may deliver next under FIFO.
    pub fn pop(&mut self, from: NodeId, to: NodeId) -> Option<M> {
        let queue = self.queues.get_mut(&(from, to))?;
        let msg = queue.pop_front();
        if queue.is_empty() {
            self.queues.remove(&(from, to));
        }
        msg
    }

    /// The front of the `(from, to)` channel without removing it.
    #[must_use]
    pub fn front(&self, from: NodeId, to: NodeId) -> Option<&M> {
        self.queues.get(&(from, to)).and_then(VecDeque::front)
    }

    /// The ordered pairs whose channel holds at least one message, in
    /// deterministic `(from, to)` order — the deliverable transitions
    /// of the current state.
    #[must_use]
    pub fn nonempty_channels(&self) -> Vec<(NodeId, NodeId)> {
        self.queues.keys().copied().collect()
    }

    /// Total number of in-flight messages across all channels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// `true` when no message is in flight anywhere.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    /// Drops every channel from or to `node`, returning how many
    /// messages were discarded — a crash: in-flight traffic involving
    /// the node is lost, everything else is untouched.
    pub fn drop_node(&mut self, node: NodeId) -> usize {
        let mut dropped = 0;
        self.queues.retain(|&(from, to), queue| {
            if from == node || to == node {
                dropped += queue.len();
                false
            } else {
                true
            }
        });
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_channel_fifo_and_independence() {
        let mut net: ChannelState<u32> = ChannelState::new();
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        net.send(a, b, 1);
        net.send(c, b, 99);
        net.send(a, b, 2);
        assert_eq!(net.len(), 3);
        assert_eq!(net.nonempty_channels(), vec![(a, b), (c, b)]);
        // Channels drain independently; each in send order.
        assert_eq!(net.pop(c, b), Some(99));
        assert_eq!(net.pop(a, b), Some(1));
        assert_eq!(net.front(a, b), Some(&2));
        assert_eq!(net.pop(a, b), Some(2));
        assert!(net.is_empty());
    }

    #[test]
    fn equal_contents_hash_equal_regardless_of_history() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        let mut x: ChannelState<u32> = ChannelState::new();
        x.send(a, b, 7);
        let mut y: ChannelState<u32> = ChannelState::new();
        y.send(c, b, 5);
        y.send(a, b, 7);
        y.pop(c, b);
        assert_eq!(x, y);
        let digest = |s: &ChannelState<u32>| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(digest(&x), digest(&y));
    }

    #[test]
    fn drop_node_loses_only_its_traffic() {
        let mut net: ChannelState<u32> = ChannelState::new();
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        net.send(a, b, 1);
        net.send(b, c, 2);
        net.send(c, a, 3);
        assert_eq!(net.drop_node(b), 2);
        assert_eq!(net.nonempty_channels(), vec![(c, a)]);
    }
}
