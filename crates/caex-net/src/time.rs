//! Virtual time for the discrete-event simulator.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, measured in integer microseconds.
///
/// Integer micros keep the event queue total order exact (no float
/// comparison issues) while still expressing realistic network latencies
/// (the paper stresses that "the time of message passing is not
/// negligible", §2.1).
///
/// # Examples
///
/// ```
/// use caex_net::SimTime;
///
/// let t = SimTime::ZERO + SimTime::from_micros(150);
/// assert_eq!(t.as_micros(), 150);
/// assert_eq!(t - SimTime::from_micros(50), SimTime::from_micros(100));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time point / duration from microseconds.
    #[must_use]
    pub fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time point / duration from milliseconds.
    #[must_use]
    pub fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Returns the value in microseconds.
    #[must_use]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the value in (truncated) milliseconds.
    #[must_use]
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Saturating subtraction: goes to zero instead of underflowing.
    #[must_use]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Returns the later of two times.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves() {
        let a = SimTime::from_micros(100);
        let b = SimTime::from_micros(40);
        assert_eq!((a + b).as_micros(), 140);
        assert_eq!((a - b).as_micros(), 60);
        let mut c = a;
        c += b;
        assert_eq!(c.as_micros(), 140);
    }

    #[test]
    fn millis_conversion() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(2_500).as_millis(), 2);
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
    }

    #[test]
    fn max_picks_later() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        assert_eq!(a.max(b), b);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn sub_underflow_panics_in_debug() {
        let _ = SimTime::from_micros(1) - SimTime::from_micros(2);
    }
}
