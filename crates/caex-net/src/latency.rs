//! Message-latency models for the simulator.

use crate::SimTime;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How long a message spends in flight between two nodes.
///
/// All random models draw from the simulator's seeded RNG, so runs are
/// reproducible. FIFO ordering is enforced by the simulator regardless of
/// the jitter a model produces (a later message never overtakes an
/// earlier one on the same ordered pair).
///
/// # Examples
///
/// ```
/// use caex_net::{LatencyModel, SimTime};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let model = LatencyModel::Uniform {
///     min: SimTime::from_micros(50),
///     max: SimTime::from_micros(150),
/// };
/// let d = model.sample(&mut rng);
/// assert!(d >= SimTime::from_micros(50) && d <= SimTime::from_micros(150));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(SimTime),
    /// Latency drawn uniformly from `[min, max]`.
    Uniform {
        /// Lower bound (inclusive).
        min: SimTime,
        /// Upper bound (inclusive).
        max: SimTime,
    },
    /// Exponentially distributed latency with the given mean, floored at
    /// `min` — a common heavy-ish-tail model for shared networks.
    Exponential {
        /// Floor added to every sample.
        min: SimTime,
        /// Mean of the exponential component.
        mean: SimTime,
    },
}

impl LatencyModel {
    /// A zero-latency model: messages arrive instantly (but still in
    /// FIFO order and after currently queued events).
    #[must_use]
    pub fn zero() -> Self {
        LatencyModel::Constant(SimTime::ZERO)
    }

    /// Draws one latency sample using `rng`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => {
                debug_assert!(min <= max, "uniform latency bounds inverted");
                if min == max {
                    min
                } else {
                    SimTime::from_micros(rng.gen_range(min.as_micros()..=max.as_micros()))
                }
            }
            LatencyModel::Exponential { min, mean } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let exp = -(u.ln()) * mean.as_micros() as f64;
                min + SimTime::from_micros(exp as u64)
            }
        }
    }

    /// The smallest latency this model can produce.
    #[must_use]
    pub fn lower_bound(&self) -> SimTime {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, .. } | LatencyModel::Exponential { min, .. } => min,
        }
    }
}

impl Default for LatencyModel {
    /// A 100µs constant latency — a deliberately non-zero default so that
    /// "message passing time is not negligible" (§2.1) holds out of the
    /// box.
    fn default() -> Self {
        LatencyModel::Constant(SimTime::from_micros(100))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = LatencyModel::Constant(SimTime::from_micros(42));
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimTime::from_micros(42));
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = LatencyModel::Uniform {
            min: SimTime::from_micros(10),
            max: SimTime::from_micros(20),
        };
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d >= SimTime::from_micros(10) && d <= SimTime::from_micros(20));
        }
    }

    #[test]
    fn uniform_degenerate_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = LatencyModel::Uniform {
            min: SimTime::from_micros(5),
            max: SimTime::from_micros(5),
        };
        assert_eq!(m.sample(&mut rng), SimTime::from_micros(5));
    }

    #[test]
    fn exponential_respects_floor() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = LatencyModel::Exponential {
            min: SimTime::from_micros(30),
            mean: SimTime::from_micros(100),
        };
        for _ in 0..1000 {
            assert!(m.sample(&mut rng) >= SimTime::from_micros(30));
        }
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = LatencyModel::Exponential {
            min: SimTime::ZERO,
            mean: SimTime::from_micros(100),
        };
        let n = 20_000;
        let total: u64 = (0..n).map(|_| m.sample(&mut rng).as_micros()).sum();
        let mean = total as f64 / n as f64;
        assert!((80.0..120.0).contains(&mean), "sample mean {mean}");
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let m = LatencyModel::Uniform {
            min: SimTime::ZERO,
            max: SimTime::from_micros(1000),
        };
        let seq = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20).map(|_| m.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(seq(9), seq(9));
        assert_ne!(seq(9), seq(10));
    }

    #[test]
    fn lower_bounds() {
        assert_eq!(LatencyModel::zero().lower_bound(), SimTime::ZERO);
        assert_eq!(
            LatencyModel::Exponential {
                min: SimTime::from_micros(3),
                mean: SimTime::from_micros(9)
            }
            .lower_bound(),
            SimTime::from_micros(3)
        );
    }
}
