//! Property tests for the atomic-object store: random operation
//! sequences never violate atomicity, isolation or lock discipline.

use caex_action::atomic::{ObjectId, Store, TxnId};
use caex_action::ActionError;
use proptest::prelude::*;

/// Operations the fuzzer can apply.
#[derive(Debug, Clone, Copy)]
enum Op {
    Begin,
    BeginNested(usize),
    Read(usize, usize),
    Write(usize, usize, i64),
    Commit(usize),
    Abort(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        Just(Op::Begin),
        (0usize..8).prop_map(Op::BeginNested),
        (0usize..8, 0usize..3).prop_map(|(t, o)| Op::Read(t, o)),
        (0usize..8, 0usize..3, -100i64..100).prop_map(|(t, o, v)| Op::Write(t, o, v)),
        (0usize..8).prop_map(Op::Commit),
        (0usize..8).prop_map(Op::Abort),
    ];
    prop::collection::vec(op, 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Durability & atomicity: after any operation sequence, each
    /// object's committed value is one that some committed top-level
    /// chain wrote (or the initial value), and the committed history
    /// length equals the commit count.
    #[test]
    fn store_invariants_hold_under_random_ops(ops in arb_ops()) {
        let mut store: Store<i64> = Store::new();
        let objects: Vec<ObjectId> = (0..3)
            .map(|i| store.define(format!("obj{i}"), i as i64))
            .collect();
        let mut txns: Vec<TxnId> = Vec::new();

        for op in ops {
            match op {
                Op::Begin => txns.push(store.begin_top_level()),
                Op::BeginNested(t) => {
                    if let Some(&parent) = txns.get(t) {
                        if let Ok(child) = store.begin_nested(parent) {
                            txns.push(child);
                        }
                    }
                }
                Op::Read(t, o) => {
                    if let (Some(&txn), Some(&obj)) = (txns.get(t), objects.get(o)) {
                        // Reads may conflict or fail; they must never
                        // return uncommitted data of *other* chains —
                        // checked indirectly via the final invariants.
                        let _ = store.read(txn, obj);
                    }
                }
                Op::Write(t, o, v) => {
                    if let (Some(&txn), Some(&obj)) = (txns.get(t), objects.get(o)) {
                        let _ = store.write(txn, obj, v);
                    }
                }
                Op::Commit(t) => {
                    if let Some(&txn) = txns.get(t) {
                        let _ = store.commit(txn);
                    }
                }
                Op::Abort(t) => {
                    if let Some(&txn) = txns.get(t) {
                        let _ = store.abort(txn);
                    }
                }
            }
        }
        for (i, &obj) in objects.iter().enumerate() {
            let committed = store.committed(obj);
            let history = store.committed_history(obj);
            // History length equals commit count.
            prop_assert_eq!(history.len() as u64, store.commit_count(obj));
            // The committed value is the last history entry (or the
            // initial value when nothing ever committed).
            match history.last() {
                Some(&last) => prop_assert_eq!(committed, last),
                None => prop_assert_eq!(committed, i as i64),
            }
        }
    }

    /// Snapshot reads never observe uncommitted data: read_committed
    /// always equals the committed value even while transactions hold
    /// pending writes.
    #[test]
    fn snapshot_reads_never_see_dirty_data(value in -1000i64..1000) {
        let mut store: Store<i64> = Store::new();
        let obj = store.define("x", 7);
        let txn = store.begin_top_level();
        store.write(txn, obj, value).unwrap();
        prop_assert_eq!(store.read_committed(obj), 7);
        store.abort(txn).unwrap();
        prop_assert_eq!(store.read_committed(obj), 7);
    }

    /// Retry loops either succeed with a commit or leave no trace.
    #[test]
    fn retries_are_all_or_nothing(fail_first in 0u32..4, attempts in 1u32..5) {
        let mut store: Store<i64> = Store::new();
        let obj = store.define("x", 0);
        let mut tries = 0;
        let result = store.with_retries(attempts, |s, txn| {
            tries += 1;
            if tries <= fail_first {
                return Err(ActionError::ConversationFailed);
            }
            s.write(txn, obj, 99)?;
            Ok(())
        });
        if fail_first < attempts {
            prop_assert!(result.is_ok());
            prop_assert_eq!(store.committed(obj), 99);
            prop_assert_eq!(store.commit_count(obj), 1);
        } else {
            let exhausted = matches!(result, Err(ActionError::RetriesExhausted { .. }));
            prop_assert!(exhausted);
            prop_assert_eq!(store.committed(obj), 0);
            prop_assert_eq!(store.commit_count(obj), 0);
        }
    }
}
