//! Recovery blocks — the first of the paper's "two basic techniques for
//! building fault-tolerant software" (§2.1, originally Randell 1975).
//!
//! A recovery block guards one computation with an acceptance test and
//! a stack of alternates: run the primary; if the test rejects (or the
//! alternate itself reports failure), restore the checkpointed state
//! and try the next alternate. A [`Conversation`](crate::conversation)
//! is the multi-process generalisation; this module is the
//! single-state building block, usable inside exception handlers.
//!
//! # Examples
//!
//! ```
//! use caex_action::recovery_block::RecoveryBlock;
//!
//! # fn main() -> Result<(), caex_action::ActionError> {
//! let mut block = RecoveryBlock::new(10_i64);
//! block
//!     .ensure(|v| *v >= 0)
//!     .attempt(|v| { *v -= 100; Ok(()) })          // overshoots
//!     .attempt(|v| { *v -= 5; Ok(()) });           // acceptable
//! let report = block.run()?;
//! assert_eq!(report.accepted_attempt, 1);
//! assert_eq!(*report.value(), 5);
//! # Ok(())
//! # }
//! ```

use crate::ActionError;
use std::fmt;

type Attempt<S> = Box<dyn FnMut(&mut S) -> Result<(), ActionError> + Send>;
type Test<S> = Box<dyn Fn(&S) -> bool + Send>;

/// Outcome of a successful recovery block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockReport<S> {
    /// Index of the accepted attempt (0 = primary).
    pub accepted_attempt: usize,
    /// Number of state restorations performed.
    pub restorations: usize,
    value: S,
}

impl<S> BlockReport<S> {
    /// The accepted final state.
    #[must_use]
    pub fn value(&self) -> &S {
        &self.value
    }

    /// Consumes the report, returning the accepted state.
    #[must_use]
    pub fn into_value(self) -> S {
        self.value
    }
}

/// A recovery block over state `S`. See the [module docs](self).
pub struct RecoveryBlock<S> {
    state: S,
    test: Option<Test<S>>,
    attempts: Vec<Attempt<S>>,
}

impl<S: fmt::Debug> fmt::Debug for RecoveryBlock<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecoveryBlock")
            .field("state", &self.state)
            .field("attempts", &self.attempts.len())
            .field("has_test", &self.test.is_some())
            .finish()
    }
}

impl<S: Clone> RecoveryBlock<S> {
    /// Creates a block over the given initial (checkpointed) state.
    #[must_use]
    pub fn new(state: S) -> Self {
        RecoveryBlock {
            state,
            test: None,
            attempts: Vec::new(),
        }
    }

    /// Sets the acceptance test (required before [`run`](Self::run)).
    pub fn ensure<T>(&mut self, test: T) -> &mut Self
    where
        T: Fn(&S) -> bool + Send + 'static,
    {
        self.test = Some(Box::new(test));
        self
    }

    /// Appends an attempt: the primary first, then alternates. An
    /// attempt may also reject itself by returning `Err` (internal
    /// error detection), which counts like a failed acceptance test.
    pub fn attempt<F>(&mut self, body: F) -> &mut Self
    where
        F: FnMut(&mut S) -> Result<(), ActionError> + Send + 'static,
    {
        self.attempts.push(Box::new(body));
        self
    }

    /// Runs attempts until one passes the acceptance test.
    ///
    /// # Errors
    ///
    /// [`ActionError::ConversationFailed`] when every attempt fails
    /// (the state is left at the entry checkpoint — the caller then
    /// signals a failure exception, per the idealised fault-tolerant
    /// component model).
    ///
    /// # Panics
    ///
    /// Panics if no acceptance test was installed — running a recovery
    /// block without one is a structural programming error.
    pub fn run(&mut self) -> Result<BlockReport<S>, ActionError> {
        let test = self
            .test
            .as_ref()
            .expect("recovery block requires an acceptance test");
        let checkpoint = self.state.clone();
        for (i, attempt) in self.attempts.iter_mut().enumerate() {
            let ok = attempt(&mut self.state).is_ok() && test(&self.state);
            if ok {
                return Ok(BlockReport {
                    accepted_attempt: i,
                    // Every preceding attempt restored the checkpoint.
                    restorations: i,
                    value: self.state.clone(),
                });
            }
            self.state.clone_from(&checkpoint);
        }
        Err(ActionError::ConversationFailed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_passing_needs_no_restoration() {
        let mut block = RecoveryBlock::new(vec![1, 2, 3]);
        block.ensure(|v: &Vec<i32>| v.len() == 4).attempt(|v| {
            v.push(4);
            Ok(())
        });
        let report = block.run().unwrap();
        assert_eq!(report.accepted_attempt, 0);
        assert_eq!(report.restorations, 0);
        assert_eq!(report.value(), &vec![1, 2, 3, 4]);
    }

    #[test]
    fn failed_acceptance_restores_and_tries_alternate() {
        let mut block = RecoveryBlock::new(0_i64);
        block
            .ensure(|v| (1..10).contains(v))
            .attempt(|v| {
                *v = 99;
                Ok(())
            })
            .attempt(|v| {
                *v += 7;
                Ok(())
            });
        let report = block.run().unwrap();
        assert_eq!(report.accepted_attempt, 1);
        assert_eq!(report.restorations, 1);
        // The alternate saw the *restored* state (0), not 99.
        assert_eq!(report.into_value(), 7);
    }

    #[test]
    fn attempts_may_self_reject() {
        let mut block = RecoveryBlock::new(1_u32);
        block
            .ensure(|_| true)
            .attempt(|_| Err(ActionError::ConversationFailed))
            .attempt(|v| {
                *v = 2;
                Ok(())
            });
        let report = block.run().unwrap();
        assert_eq!(report.accepted_attempt, 1);
    }

    #[test]
    fn exhaustion_restores_checkpoint_and_errors() {
        let mut block = RecoveryBlock::new(5_i32);
        block.ensure(|v| *v < 0).attempt(|v| {
            *v = 10;
            Ok(())
        });
        assert_eq!(block.run().unwrap_err(), ActionError::ConversationFailed);
        // Internal state back at the checkpoint for the next run.
        block.attempt(|v| {
            *v = -1;
            Ok(())
        });
        let report = block.run().unwrap();
        assert_eq!(report.accepted_attempt, 1);
        assert_eq!(report.into_value(), -1);
    }

    #[test]
    #[should_panic(expected = "requires an acceptance test")]
    fn missing_test_panics() {
        let mut block = RecoveryBlock::new(0_u8);
        block.attempt(|_| Ok(()));
        let _ = block.run();
    }
}
