//! Coordinated atomic (CA) actions: the structuring framework the
//! resolution algorithm of Romanovsky, Xu & Randell (1996) operates in.
//!
//! A CA action (§3 of the paper) coordinates error recovery between
//! multiple interacting objects by integrating:
//!
//! - **conversations** (joint backward error recovery with acceptance
//!   tests, [`conversation`]),
//! - **transactions** over shared *external atomic objects*
//!   ([`atomic`]), and
//! - **concurrent exception handling** (handlers declared for every
//!   exception of the action, [`HandlerTable`]).
//!
//! This crate provides the *static* structure — actions, nesting,
//! participant sets, handler tables — plus the atomic-object and
//! conversation substrates. The *dynamic* protocol (who tells whom what
//! when an exception is raised) lives in the `caex` crate.
//!
//! # Quick example
//!
//! ```
//! use caex_action::{ActionRegistry, ActionScope};
//! use caex_net::NodeId;
//! use caex_tree::aircraft_tree;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), caex_action::ActionError> {
//! let tree = Arc::new(aircraft_tree());
//! let mut registry = ActionRegistry::new();
//! let a1 = registry.declare(ActionScope::top_level(
//!     "flight-control",
//!     (0..3).map(NodeId::new),
//!     Arc::clone(&tree),
//! ))?;
//! let a2 = registry.declare(ActionScope::nested(
//!     "engine-check",
//!     [NodeId::new(1), NodeId::new(2)],
//!     Arc::clone(&tree),
//!     a1,
//! ))?;
//! assert!(registry.is_nested_within(a2, a1)?);
//! # Ok(())
//! # }
//! ```


pub mod atomic;
pub mod conversation;
pub mod nvp;
pub mod recovery_block;

mod action;
mod error;
mod handler;
mod registry;

pub use action::{ActionId, ActionScope};
pub use error::ActionError;
pub use handler::{AbortionOutcome, HandlerOutcome, HandlerTable};
pub use registry::ActionRegistry;
