//! The registry of declared actions and their nesting structure.

use crate::{ActionError, ActionId, ActionScope};
use caex_net::NodeId;

/// All statically declared CA actions of a program, with their nesting
/// relations validated at declaration time.
///
/// Validation enforces the paper's structural rules:
///
/// - a nested action's participants must be a subset of its parent's
///   (§3.1: "a subset of these participating objects may further enter a
///   nested CA action");
/// - every action has at least one participant;
/// - a parent must be declared before its children (so the nesting
///   relation is acyclic by construction).
///
/// # Examples
///
/// ```
/// use caex_action::{ActionRegistry, ActionScope};
/// use caex_net::NodeId;
/// use caex_tree::chain_tree;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), caex_action::ActionError> {
/// let tree = Arc::new(chain_tree(3));
/// let mut reg = ActionRegistry::new();
/// let a1 = reg.declare(ActionScope::top_level(
///     "A1", (0..4).map(NodeId::new), Arc::clone(&tree),
/// ))?;
/// let a2 = reg.declare(ActionScope::nested(
///     "A2", (1..4).map(NodeId::new), Arc::clone(&tree), a1,
/// ))?;
/// assert_eq!(reg.depth(a2)?, 1);
/// assert_eq!(reg.chain_between(a2, a1)?, vec![a2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ActionRegistry {
    actions: Vec<ActionScope>,
    /// First [`ActionId`] this registry hands out. Non-zero bases let
    /// many independent registries coexist in one process (a fleet of
    /// actions multiplexed by one engine) without id collisions.
    base: u32,
}

impl ActionRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        ActionRegistry::default()
    }

    /// Creates an empty registry whose ids start at `base` instead of 0.
    ///
    /// Protocol state downstream is keyed by `(ActionId, round)`, so
    /// distinct bases are what keep a fleet's actions disjoint in
    /// metrics, observability and the resolution machine itself.
    ///
    /// # Examples
    ///
    /// ```
    /// use caex_action::{ActionRegistry, ActionScope};
    /// use caex_net::NodeId;
    /// use caex_tree::chain_tree;
    /// use std::sync::Arc;
    ///
    /// let mut reg = ActionRegistry::with_base(7);
    /// let id = reg
    ///     .declare(ActionScope::top_level(
    ///         "A", [NodeId::new(0)], Arc::new(chain_tree(2)),
    ///     ))
    ///     .unwrap();
    /// assert_eq!(id.index(), 7);
    /// assert!(reg.scope(id).is_ok());
    /// ```
    #[must_use]
    pub fn with_base(base: u32) -> Self {
        ActionRegistry {
            actions: Vec::new(),
            base,
        }
    }

    /// The first id this registry hands out (0 for [`ActionRegistry::new`]).
    #[must_use]
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Maps a (possibly offset) id to a slot in `actions`, if declared.
    fn slot(&self, id: ActionId) -> Option<usize> {
        let rel = id.index().checked_sub(self.base)? as usize;
        (rel < self.actions.len()).then_some(rel)
    }

    /// Number of declared actions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// `true` if nothing is declared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Declares an action, validating its structure, and returns its id.
    ///
    /// # Errors
    ///
    /// - [`ActionError::NoParticipants`] for an empty participant set;
    /// - [`ActionError::UnknownParent`] if the scope names an undeclared
    ///   parent;
    /// - [`ActionError::ParticipantsNotNested`] if a participant of a
    ///   nested action does not participate in the parent.
    pub fn declare(&mut self, scope: ActionScope) -> Result<ActionId, ActionError> {
        if scope.participants().is_empty() {
            return Err(ActionError::NoParticipants);
        }
        let id = ActionId::new(self.base + self.actions.len() as u32);
        if let Some(parent) = scope.parent() {
            let parent_scope = self
                .slot(parent)
                .map(|i| &self.actions[i])
                .ok_or(ActionError::UnknownParent(parent))?;
            for &p in scope.participants() {
                if !parent_scope.is_participant(p) {
                    return Err(ActionError::ParticipantsNotNested {
                        action: id,
                        object: p,
                    });
                }
            }
        }
        self.actions.push(scope);
        Ok(id)
    }

    /// Returns the scope of a declared action.
    ///
    /// # Errors
    ///
    /// Returns [`ActionError::UnknownAction`] for an undeclared id.
    pub fn scope(&self, id: ActionId) -> Result<&ActionScope, ActionError> {
        self.slot(id)
            .map(|i| &self.actions[i])
            .ok_or(ActionError::UnknownAction(id))
    }

    /// Iterates over all declared `(id, scope)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ActionId, &ActionScope)> {
        self.actions
            .iter()
            .enumerate()
            .map(|(i, s)| (ActionId::new(self.base + i as u32), s))
    }

    /// Nesting depth of `id` (top-level actions have depth 0).
    ///
    /// # Errors
    ///
    /// Returns [`ActionError::UnknownAction`] for an undeclared id.
    pub fn depth(&self, id: ActionId) -> Result<u32, ActionError> {
        let mut depth = 0;
        let mut current = self.scope(id)?;
        while let Some(parent) = current.parent() {
            depth += 1;
            current = self.scope(parent)?;
        }
        Ok(depth)
    }

    /// `true` if `inner` is (transitively) nested within `outer`.
    /// An action is not nested within itself.
    ///
    /// # Errors
    ///
    /// Returns [`ActionError::UnknownAction`] for an undeclared id.
    pub fn is_nested_within(&self, inner: ActionId, outer: ActionId) -> Result<bool, ActionError> {
        self.scope(outer)?;
        let mut current = self.scope(inner)?;
        while let Some(parent) = current.parent() {
            if parent == outer {
                return Ok(true);
            }
            current = self.scope(parent)?;
        }
        Ok(false)
    }

    /// The chain of actions from `inner` (inclusive) up to `outer`
    /// (exclusive), innermost first — exactly the abortion order of
    /// §4.1: "it must execute abortion handlers in the order (i+k),
    /// (i+k−1), …, (i+1)".
    ///
    /// # Errors
    ///
    /// [`ActionError::UnknownAction`] for undeclared ids, or
    /// [`ActionError::NotOnOneChain`] if `outer` does not contain
    /// `inner`.
    pub fn chain_between(
        &self,
        inner: ActionId,
        outer: ActionId,
    ) -> Result<Vec<ActionId>, ActionError> {
        self.scope(outer)?;
        if inner == outer {
            return Ok(Vec::new());
        }
        let mut chain = vec![inner];
        let mut current = self.scope(inner)?;
        while let Some(parent) = current.parent() {
            if parent == outer {
                return Ok(chain);
            }
            chain.push(parent);
            current = self.scope(parent)?;
        }
        Err(ActionError::NotOnOneChain(inner, outer))
    }

    /// All actions `object` participates in, outermost first along each
    /// chain (declaration order, which respects nesting).
    #[must_use]
    pub fn actions_of(&self, object: NodeId) -> Vec<ActionId> {
        self.iter()
            .filter(|(_, s)| s.is_participant(object))
            .map(|(id, _)| id)
            .collect()
    }

    /// The directly nested children of `id`.
    ///
    /// # Errors
    ///
    /// Returns [`ActionError::UnknownAction`] for an undeclared id.
    pub fn children(&self, id: ActionId) -> Result<Vec<ActionId>, ActionError> {
        self.scope(id)?;
        Ok(self
            .iter()
            .filter(|(_, s)| s.parent() == Some(id))
            .map(|(cid, _)| cid)
            .collect())
    }

    /// All top-level (depth-0) actions, in declaration order.
    #[must_use]
    pub fn top_level(&self) -> Vec<ActionId> {
        self.iter()
            .filter(|(_, s)| s.parent().is_none())
            .map(|(id, _)| id)
            .collect()
    }

    /// All actions (transitively) nested within `id`, in declaration
    /// order — the full abortion scope of `id`, excluding `id` itself.
    ///
    /// # Errors
    ///
    /// Returns [`ActionError::UnknownAction`] for an undeclared id.
    pub fn descendants(&self, id: ActionId) -> Result<Vec<ActionId>, ActionError> {
        self.scope(id)?;
        Ok(self
            .iter()
            .filter(|&(candidate, _)| {
                candidate != id && self.is_nested_within(candidate, id) == Ok(true)
            })
            .map(|(cid, _)| cid)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caex_tree::{chain_tree, ExceptionTree};
    use std::sync::Arc;

    fn tree() -> Arc<ExceptionTree> {
        Arc::new(chain_tree(3))
    }

    /// Builds the paper's Figure 3/4 structure: A1 ⊃ A2 ⊃ A3 with
    /// participants {O0..O3}, {O1..O3}, {O1, O2} respectively.
    fn fig4() -> (ActionRegistry, ActionId, ActionId, ActionId) {
        let t = tree();
        let mut reg = ActionRegistry::new();
        let a1 = reg
            .declare(ActionScope::top_level(
                "A1",
                (0..4).map(NodeId::new),
                Arc::clone(&t),
            ))
            .unwrap();
        let a2 = reg
            .declare(ActionScope::nested(
                "A2",
                (1..4).map(NodeId::new),
                Arc::clone(&t),
                a1,
            ))
            .unwrap();
        let a3 = reg
            .declare(ActionScope::nested(
                "A3",
                [NodeId::new(1), NodeId::new(2)],
                Arc::clone(&t),
                a2,
            ))
            .unwrap();
        (reg, a1, a2, a3)
    }

    #[test]
    fn declares_and_looks_up() {
        let (reg, a1, _a2, a3) = fig4();
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.scope(a1).unwrap().name(), "A1");
        assert_eq!(reg.scope(a3).unwrap().participants().len(), 2);
    }

    #[test]
    fn rejects_empty_participants() {
        let mut reg = ActionRegistry::new();
        let scope = ActionScope::top_level("x", std::iter::empty(), tree());
        assert_eq!(reg.declare(scope), Err(ActionError::NoParticipants));
    }

    #[test]
    fn rejects_unknown_parent() {
        let mut reg = ActionRegistry::new();
        let scope = ActionScope::nested("x", [NodeId::new(0)], tree(), ActionId::new(9));
        assert!(matches!(
            reg.declare(scope),
            Err(ActionError::UnknownParent(_))
        ));
    }

    #[test]
    fn rejects_non_subset_nesting() {
        let t = tree();
        let mut reg = ActionRegistry::new();
        let a1 = reg
            .declare(ActionScope::top_level(
                "A1",
                [NodeId::new(0), NodeId::new(1)],
                Arc::clone(&t),
            ))
            .unwrap();
        let bad = ActionScope::nested("A2", [NodeId::new(1), NodeId::new(7)], t, a1);
        assert!(matches!(
            reg.declare(bad),
            Err(ActionError::ParticipantsNotNested { .. })
        ));
    }

    #[test]
    fn depth_counts_nesting() {
        let (reg, a1, a2, a3) = fig4();
        assert_eq!(reg.depth(a1).unwrap(), 0);
        assert_eq!(reg.depth(a2).unwrap(), 1);
        assert_eq!(reg.depth(a3).unwrap(), 2);
    }

    #[test]
    fn nesting_relation() {
        let (reg, a1, a2, a3) = fig4();
        assert!(reg.is_nested_within(a3, a1).unwrap());
        assert!(reg.is_nested_within(a3, a2).unwrap());
        assert!(reg.is_nested_within(a2, a1).unwrap());
        assert!(!reg.is_nested_within(a1, a3).unwrap());
        assert!(!reg.is_nested_within(a1, a1).unwrap());
    }

    #[test]
    fn chain_is_innermost_first() {
        let (reg, a1, a2, a3) = fig4();
        assert_eq!(reg.chain_between(a3, a1).unwrap(), vec![a3, a2]);
        assert_eq!(reg.chain_between(a2, a1).unwrap(), vec![a2]);
        assert!(reg.chain_between(a3, a3).unwrap().is_empty());
    }

    #[test]
    fn chain_rejects_disjoint_actions() {
        let t = tree();
        let mut reg = ActionRegistry::new();
        let a = reg
            .declare(ActionScope::top_level(
                "A",
                [NodeId::new(0)],
                Arc::clone(&t),
            ))
            .unwrap();
        let b = reg
            .declare(ActionScope::top_level("B", [NodeId::new(1)], t))
            .unwrap();
        assert!(matches!(
            reg.chain_between(a, b),
            Err(ActionError::NotOnOneChain(..))
        ));
    }

    #[test]
    fn actions_of_object() {
        let (reg, a1, a2, a3) = fig4();
        assert_eq!(reg.actions_of(NodeId::new(0)), vec![a1]);
        assert_eq!(reg.actions_of(NodeId::new(1)), vec![a1, a2, a3]);
        assert_eq!(reg.actions_of(NodeId::new(3)), vec![a1, a2]);
    }

    #[test]
    fn children_lists_direct_nesting_only() {
        let (reg, a1, a2, a3) = fig4();
        assert_eq!(reg.children(a1).unwrap(), vec![a2]);
        assert_eq!(reg.children(a2).unwrap(), vec![a3]);
        assert!(reg.children(a3).unwrap().is_empty());
    }

    #[test]
    fn based_registry_offsets_ids_and_rejects_below_base() {
        let t = tree();
        let mut reg = ActionRegistry::with_base(10);
        let a1 = reg
            .declare(ActionScope::top_level(
                "A1",
                (0..3).map(NodeId::new),
                Arc::clone(&t),
            ))
            .unwrap();
        let a2 = reg
            .declare(ActionScope::nested(
                "A2",
                [NodeId::new(1)],
                Arc::clone(&t),
                a1,
            ))
            .unwrap();
        assert_eq!(a1, ActionId::new(10));
        assert_eq!(a2, ActionId::new(11));
        assert_eq!(reg.base(), 10);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.depth(a2).unwrap(), 1);
        assert_eq!(reg.top_level(), vec![a1]);
        assert_eq!(reg.children(a1).unwrap(), vec![a2]);
        assert_eq!(reg.actions_of(NodeId::new(1)), vec![a1, a2]);
        // Ids below the base (another instance's range) are unknown here.
        assert!(matches!(
            reg.scope(ActionId::new(3)),
            Err(ActionError::UnknownAction(_))
        ));
        // A parent id from a foreign range is rejected at declaration.
        let foreign = ActionScope::nested("X", [NodeId::new(1)], t, ActionId::new(2));
        let mut reg2 = ActionRegistry::with_base(10);
        assert!(matches!(
            reg2.declare(foreign),
            Err(ActionError::UnknownParent(_))
        ));
    }

    #[test]
    fn unknown_action_queries_error() {
        let (reg, ..) = fig4();
        let bogus = ActionId::new(99);
        assert!(reg.scope(bogus).is_err());
        assert!(reg.depth(bogus).is_err());
        assert!(reg.children(bogus).is_err());
    }
}
