//! Action identity and static scope.

use caex_net::NodeId;
use caex_tree::{ExceptionId, ExceptionTree};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of a CA action within an [`ActionRegistry`].
///
/// [`ActionRegistry`]: crate::ActionRegistry
///
/// # Examples
///
/// ```
/// use caex_action::ActionId;
///
/// let a1 = ActionId::new(1);
/// assert_eq!(a1.to_string(), "A1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActionId(u32);

impl ActionId {
    /// Creates an action id from a raw index.
    #[must_use]
    pub fn new(index: u32) -> Self {
        ActionId(index)
    }

    /// Returns the raw index.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// The static declaration of one CA action: its participants, the
/// exception tree declared with it, and its position in the nesting
/// structure.
///
/// Matches the paper's model (§3.1, §4.1): "the exceptions that can be
/// raised within a CA action are declared together with the action
/// declaration", each participant "knows all other participating objects
/// of the same action and has the same resolution tree (which is
/// statically declared)".
///
/// # Examples
///
/// ```
/// use caex_action::ActionScope;
/// use caex_net::NodeId;
/// use caex_tree::aircraft_tree;
/// use std::sync::Arc;
///
/// let scope = ActionScope::top_level(
///     "mission",
///     [NodeId::new(0), NodeId::new(1)],
///     Arc::new(aircraft_tree()),
/// );
/// assert_eq!(scope.participants().len(), 2);
/// assert!(scope.parent().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct ActionScope {
    name: String,
    participants: Vec<NodeId>,
    tree: Arc<ExceptionTree>,
    parent: Option<ActionId>,
    declared: Option<Vec<ExceptionId>>,
}

impl ActionScope {
    /// Declares a top-level (outermost) action.
    ///
    /// Participants are deduplicated and sorted: the paper requires a
    /// total order on participants so a unique resolver can be elected.
    #[must_use]
    pub fn top_level<I>(name: impl Into<String>, participants: I, tree: Arc<ExceptionTree>) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut participants: Vec<NodeId> = participants.into_iter().collect();
        participants.sort_unstable();
        participants.dedup();
        ActionScope {
            name: name.into(),
            participants,
            tree,
            parent: None,
            declared: None,
        }
    }

    /// Declares an action nested within `parent`.
    #[must_use]
    pub fn nested<I>(
        name: impl Into<String>,
        participants: I,
        tree: Arc<ExceptionTree>,
        parent: ActionId,
    ) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut scope = ActionScope::top_level(name, participants, tree);
        scope.parent = Some(parent);
        scope
    }

    /// The action's human-readable name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The participating objects, sorted ascending (the resolver
    /// election order).
    #[must_use]
    pub fn participants(&self) -> &[NodeId] {
        &self.participants
    }

    /// `true` if `object` participates in this action.
    #[must_use]
    pub fn is_participant(&self, object: NodeId) -> bool {
        self.participants.binary_search(&object).is_ok()
    }

    /// The exception tree declared with the action.
    #[must_use]
    pub fn tree(&self) -> &Arc<ExceptionTree> {
        &self.tree
    }

    /// The directly containing action, or `None` for a top-level action.
    #[must_use]
    pub fn parent(&self) -> Option<ActionId> {
        self.parent
    }

    /// The participants other than `object`, in election order.
    #[must_use]
    pub fn peers_of(&self, object: NodeId) -> Vec<NodeId> {
        self.participants
            .iter()
            .copied()
            .filter(|&p| p != object)
            .collect()
    }

    /// The highest-ordered participant (used in tests of the election
    /// rule; the real election is over *raisers*, not all participants).
    #[must_use]
    pub fn max_participant(&self) -> Option<NodeId> {
        self.participants.last().copied()
    }

    /// Restricts the set of exception classes this action declares as
    /// raisable (a subset of the tree; the paper declares exceptions
    /// "together with the action declaration", §3.1). Duplicates are
    /// dropped; membership in the tree is *not* checked here — the
    /// static analyser reports out-of-tree declarations as a lint.
    #[must_use]
    pub fn with_declared_exceptions<I>(mut self, raisables: I) -> Self
    where
        I: IntoIterator<Item = ExceptionId>,
    {
        let mut declared: Vec<ExceptionId> = raisables.into_iter().collect();
        declared.sort_unstable();
        declared.dedup();
        self.declared = Some(declared);
        self
    }

    /// The explicitly declared raisable classes, sorted ascending, or
    /// `None` when the declaration leaves the whole tree raisable.
    #[must_use]
    pub fn declared_exceptions(&self) -> Option<&[ExceptionId]> {
        self.declared.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caex_tree::aircraft_tree;

    fn tree() -> Arc<ExceptionTree> {
        Arc::new(aircraft_tree())
    }

    #[test]
    fn participants_are_sorted_and_deduped() {
        let scope = ActionScope::top_level(
            "a",
            [
                NodeId::new(3),
                NodeId::new(1),
                NodeId::new(3),
                NodeId::new(2),
            ],
            tree(),
        );
        assert_eq!(
            scope.participants(),
            &[NodeId::new(1), NodeId::new(2), NodeId::new(3)]
        );
    }

    #[test]
    fn membership_and_peers() {
        let scope = ActionScope::top_level(
            "a",
            [NodeId::new(0), NodeId::new(2), NodeId::new(4)],
            tree(),
        );
        assert!(scope.is_participant(NodeId::new(2)));
        assert!(!scope.is_participant(NodeId::new(1)));
        assert_eq!(
            scope.peers_of(NodeId::new(2)),
            vec![NodeId::new(0), NodeId::new(4)]
        );
        assert_eq!(scope.max_participant(), Some(NodeId::new(4)));
    }

    #[test]
    fn nested_records_parent() {
        let parent = ActionId::new(0);
        let scope = ActionScope::nested("n", [NodeId::new(0)], tree(), parent);
        assert_eq!(scope.parent(), Some(parent));
        assert_eq!(scope.name(), "n");
    }

    #[test]
    fn action_id_display() {
        assert_eq!(ActionId::new(2).to_string(), "A2");
        assert_eq!(ActionId::new(2).index(), 2);
    }
}
