//! External atomic objects and the nested transactions that guard them.
//!
//! CA actions control two kinds of concurrency (§3): *cooperating*
//! objects inside the action, and *competing* actions sharing **external
//! atomic objects**. The paper requires external objects to "be atomic
//! and individually responsible for their own integrity" (§3.1) and lets
//! exception handlers call three functions explicitly — `start`,
//! `commit` and `abort` (Fig. 2a) — so forward recovery can either
//! repair the objects into new valid states or undo everything.
//!
//! [`Store`] implements that substrate: named atomic objects with
//! committed states, nested transactions keyed to the CA action nesting,
//! strict two-phase locking (a conflict surfaces as
//! [`ActionError::LockConflict`], which a competing action typically
//! turns into a raised exception), child-into-parent version merging on
//! commit, and discard-on-abort.
//!
//! # Examples
//!
//! ```
//! use caex_action::atomic::Store;
//!
//! # fn main() -> Result<(), caex_action::ActionError> {
//! let mut store: Store<i64> = Store::new();
//! let account = store.define("account", 100);
//!
//! let txn = store.begin_top_level();
//! store.write(txn, account, 150)?;
//! assert_eq!(store.read(txn, account)?, 150); // own writes visible
//! assert_eq!(store.committed(account), 100);  // isolation
//! store.commit(txn)?;
//! assert_eq!(store.committed(account), 150);  // durability
//! # Ok(())
//! # }
//! ```

use crate::ActionError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a transaction within one [`Store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId(u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// Identifier of an atomic object within one [`Store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(u32);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnStatus {
    Active,
    Committed,
    Aborted,
}

#[derive(Debug)]
struct TxnState {
    parent: Option<TxnId>,
    status: TxnStatus,
    active_children: u32,
}

#[derive(Debug)]
struct ObjectEntry<T> {
    name: String,
    committed: T,
    /// Committed states, oldest first (the durable version history).
    history: Vec<T>,
    /// Uncommitted versions, outermost transaction first. The stack
    /// always follows one nesting chain because the lock does.
    pending: Vec<(TxnId, T)>,
    /// Lock owners, outermost first; the innermost (last) owner is the
    /// only transaction allowed to read or write.
    lock: Vec<TxnId>,
    commits: u64,
    aborts: u64,
}

/// Summary counters produced by [`Store::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Defined atomic objects.
    pub objects: usize,
    /// Transactions currently active.
    pub active_transactions: usize,
    /// Total object commits.
    pub commits: u64,
    /// Total object aborts.
    pub aborts: u64,
    /// Objects currently locked by some transaction.
    pub locked_objects: usize,
}

/// A collection of named atomic objects of one value type, plus the
/// nested-transaction machinery guarding them. See the [module
/// documentation](self) for the model.
#[derive(Debug)]
pub struct Store<T> {
    objects: Vec<ObjectEntry<T>>,
    by_name: HashMap<String, ObjectId>,
    txns: HashMap<TxnId, TxnState>,
    next_txn: u64,
}

impl<T> Default for Store<T> {
    fn default() -> Self {
        Store {
            objects: Vec::new(),
            by_name: HashMap::new(),
            txns: HashMap::new(),
            next_txn: 0,
        }
    }
}

impl<T: Clone> Store<T> {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Store::default()
    }

    /// Defines a new atomic object with the given committed state.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already defined (object names are the
    /// external identity of atomic objects; duplicates are programming
    /// errors).
    pub fn define(&mut self, name: impl Into<String>, initial: T) -> ObjectId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "atomic object `{name}` already defined"
        );
        let id = ObjectId(self.objects.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.objects.push(ObjectEntry {
            name,
            committed: initial,
            history: Vec::new(),
            pending: Vec::new(),
            lock: Vec::new(),
            commits: 0,
            aborts: 0,
        });
        id
    }

    /// Looks up an object id by name.
    #[must_use]
    pub fn object_id(&self, name: &str) -> Option<ObjectId> {
        self.by_name.get(name).copied()
    }

    /// The committed (externally visible) state of an object.
    ///
    /// # Panics
    ///
    /// Panics if `object` is not from this store.
    #[must_use]
    pub fn committed(&self, object: ObjectId) -> T {
        self.objects[object.0 as usize].committed.clone()
    }

    /// How many transactions have committed changes to this object.
    #[must_use]
    pub fn commit_count(&self, object: ObjectId) -> u64 {
        self.objects[object.0 as usize].commits
    }

    /// The object's committed version history, oldest first, excluding
    /// the initial state and including the current committed value.
    #[must_use]
    pub fn committed_history(&self, object: ObjectId) -> &[T] {
        &self.objects[object.0 as usize].history
    }

    /// A snapshot read of the last committed state, taking **no lock**
    /// and requiring **no transaction** — the degree-2-isolation escape
    /// hatch for monitoring code that must not interfere with running
    /// CA actions. Never sees uncommitted data.
    #[must_use]
    pub fn read_committed(&self, object: ObjectId) -> T {
        self.objects[object.0 as usize].committed.clone()
    }

    /// The transaction currently holding the object's lock (innermost
    /// owner), if any — diagnostic introspection.
    #[must_use]
    pub fn lock_holder(&self, object: ObjectId) -> Option<TxnId> {
        self.objects[object.0 as usize].lock.last().copied()
    }

    /// How many transactions touching this object have aborted.
    #[must_use]
    pub fn abort_count(&self, object: ObjectId) -> u64 {
        self.objects[object.0 as usize].aborts
    }

    /// Summary counters across the whole store.
    ///
    /// # Examples
    ///
    /// ```
    /// use caex_action::atomic::Store;
    ///
    /// # fn main() -> Result<(), caex_action::ActionError> {
    /// let mut store: Store<i64> = Store::new();
    /// let x = store.define("x", 0);
    /// let t = store.begin_top_level();
    /// store.write(t, x, 1)?;
    /// store.commit(t)?;
    /// let stats = store.stats();
    /// assert_eq!(stats.objects, 1);
    /// assert_eq!(stats.commits, 1);
    /// assert_eq!(stats.active_transactions, 0);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            objects: self.objects.len(),
            active_transactions: self
                .txns
                .values()
                .filter(|s| s.status == TxnStatus::Active)
                .count(),
            commits: self.objects.iter().map(|o| o.commits).sum(),
            aborts: self.objects.iter().map(|o| o.aborts).sum(),
            locked_objects: self.objects.iter().filter(|o| !o.lock.is_empty()).count(),
        }
    }

    /// Starts a top-level transaction (the `start` of Fig. 2a, issued
    /// when a CA action attempt begins).
    pub fn begin_top_level(&mut self) -> TxnId {
        self.begin_inner(None)
    }

    /// Starts a transaction nested in `parent`, mirroring a nested CA
    /// action's sub-transaction.
    ///
    /// # Errors
    ///
    /// [`ActionError::UnknownTransaction`] if `parent` is unknown,
    /// [`ActionError::TransactionNotActive`] if it already finished.
    pub fn begin_nested(&mut self, parent: TxnId) -> Result<TxnId, ActionError> {
        match self.txns.get_mut(&parent) {
            None => Err(ActionError::UnknownTransaction),
            Some(state) if state.status != TxnStatus::Active => {
                Err(ActionError::TransactionNotActive)
            }
            Some(state) => {
                state.active_children += 1;
                Ok(self.begin_inner(Some(parent)))
            }
        }
    }

    fn begin_inner(&mut self, parent: Option<TxnId>) -> TxnId {
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        self.txns.insert(
            id,
            TxnState {
                parent,
                status: TxnStatus::Active,
                active_children: 0,
            },
        );
        id
    }

    /// `true` if the transaction exists and is still active.
    #[must_use]
    pub fn is_active(&self, txn: TxnId) -> bool {
        self.txns
            .get(&txn)
            .is_some_and(|s| s.status == TxnStatus::Active)
    }

    fn require_active(&self, txn: TxnId) -> Result<(), ActionError> {
        match self.txns.get(&txn) {
            None => Err(ActionError::UnknownTransaction),
            Some(s) if s.status != TxnStatus::Active => Err(ActionError::TransactionNotActive),
            Some(_) => Ok(()),
        }
    }

    fn is_self_or_ancestor(&self, candidate: TxnId, of: TxnId) -> bool {
        let mut current = Some(of);
        while let Some(t) = current {
            if t == candidate {
                return true;
            }
            current = self.txns.get(&t).and_then(|s| s.parent);
        }
        false
    }

    /// Acquires (or re-enters) the object's lock for `txn`.
    fn acquire(&mut self, txn: TxnId, object: ObjectId) -> Result<(), ActionError> {
        let holder = self.objects[object.0 as usize].lock.last().copied();
        match holder {
            None => {
                self.objects[object.0 as usize].lock.push(txn);
                Ok(())
            }
            Some(h) if h == txn => Ok(()),
            Some(h) if self.is_self_or_ancestor(h, txn) => {
                // Nested transaction inherits its ancestor's lock access
                // and narrows ownership to itself.
                self.objects[object.0 as usize].lock.push(txn);
                Ok(())
            }
            Some(_) => Err(ActionError::LockConflict {
                object: self.objects[object.0 as usize].name.clone(),
            }),
        }
    }

    /// Reads the object's state as visible to `txn`: its own pending
    /// write, else the nearest ancestor's pending write, else the
    /// committed state. Takes the lock (strict 2PL: reads and writes use
    /// one exclusive lock, the conservative choice for objects that are
    /// "individually responsible for their own integrity").
    ///
    /// # Errors
    ///
    /// [`ActionError::LockConflict`] when a non-ancestor holds the lock;
    /// [`ActionError::UnknownTransaction`] /
    /// [`ActionError::TransactionNotActive`] for bad transactions.
    pub fn read(&mut self, txn: TxnId, object: ObjectId) -> Result<T, ActionError> {
        self.require_active(txn)?;
        self.acquire(txn, object)?;
        let entry = &self.objects[object.0 as usize];
        for (owner, value) in entry.pending.iter().rev() {
            if self.is_self_or_ancestor(*owner, txn) {
                return Ok(value.clone());
            }
        }
        Ok(entry.committed.clone())
    }

    /// Writes a new state for the object on behalf of `txn`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`read`](Self::read).
    pub fn write(&mut self, txn: TxnId, object: ObjectId, value: T) -> Result<(), ActionError> {
        self.require_active(txn)?;
        self.acquire(txn, object)?;
        let entry = &mut self.objects[object.0 as usize];
        match entry.pending.last_mut() {
            Some((owner, slot)) if *owner == txn => *slot = value,
            _ => entry.pending.push((txn, value)),
        }
        Ok(())
    }

    /// Commits `txn`: its pending versions merge into the parent
    /// transaction (for a nested transaction) or become the committed
    /// states (for a top-level one); its locks pass to the parent or are
    /// released.
    ///
    /// # Errors
    ///
    /// [`ActionError::TransactionNotActive`] if the transaction already
    /// finished or still has active children (children must complete
    /// first, matching nested CA actions completing before their
    /// container), [`ActionError::UnknownTransaction`] if unknown.
    pub fn commit(&mut self, txn: TxnId) -> Result<(), ActionError> {
        self.finish(txn, true)
    }

    /// The paper's retry operation (§3.1: handlers calling `abort`,
    /// `commit` and `start` "allows easy use of retry operations (e.g.
    /// those used in Guide and Eiffel)"): runs `body` in a fresh
    /// top-level transaction, committing on `Ok` and aborting-and-
    /// retrying on `Err`, up to `attempts` times.
    ///
    /// # Errors
    ///
    /// Returns [`ActionError::RetriesExhausted`] when every attempt
    /// failed (objects are left at their last committed states), or the
    /// commit's own error if the final commit fails.
    ///
    /// # Examples
    ///
    /// ```
    /// use caex_action::atomic::Store;
    /// use caex_action::ActionError;
    ///
    /// # fn main() -> Result<(), ActionError> {
    /// let mut store: Store<i64> = Store::new();
    /// let obj = store.define("x", 1);
    /// let mut attempts = 0;
    /// let v = store.with_retries(3, |s, txn| {
    ///     attempts += 1;
    ///     if attempts < 3 {
    ///         return Err(ActionError::ConversationFailed); // transient
    ///     }
    ///     let v = s.read(txn, obj)?;
    ///     s.write(txn, obj, v * 10)?;
    ///     Ok(v * 10)
    /// })?;
    /// assert_eq!(v, 10);
    /// assert_eq!(store.committed(obj), 10);
    /// assert_eq!(store.abort_count(obj), 0); // failed attempts touched nothing
    /// # Ok(())
    /// # }
    /// ```
    pub fn with_retries<R, F>(&mut self, attempts: u32, mut body: F) -> Result<R, ActionError>
    where
        F: FnMut(&mut Self, TxnId) -> Result<R, ActionError>,
    {
        for _ in 0..attempts {
            let txn = self.begin_top_level();
            match body(self, txn) {
                Ok(value) => {
                    self.commit(txn)?;
                    return Ok(value);
                }
                Err(_) => {
                    // The attempt failed (conflict, validation, …):
                    // undo and go again.
                    let _ = self.abort(txn);
                }
            }
        }
        Err(ActionError::RetriesExhausted { attempts })
    }

    /// Aborts `txn`: its pending versions are discarded and its locks
    /// revert to the parent (or are released). Any active child
    /// transactions are aborted first, innermost effects included —
    /// aborting a CA action aborts its nested actions.
    ///
    /// # Errors
    ///
    /// [`ActionError::UnknownTransaction`] /
    /// [`ActionError::TransactionNotActive`] for bad transactions.
    pub fn abort(&mut self, txn: TxnId) -> Result<(), ActionError> {
        // Abort active children (and transitively theirs) first.
        let children: Vec<TxnId> = self
            .txns
            .iter()
            .filter(|(_, s)| s.parent == Some(txn) && s.status == TxnStatus::Active)
            .map(|(&id, _)| id)
            .collect();
        for child in children {
            self.abort(child)?;
        }
        self.finish(txn, false)
    }

    fn finish(&mut self, txn: TxnId, commit: bool) -> Result<(), ActionError> {
        let state = self.txns.get(&txn).ok_or(ActionError::UnknownTransaction)?;
        if state.status != TxnStatus::Active {
            return Err(ActionError::TransactionNotActive);
        }
        if commit && state.active_children > 0 {
            return Err(ActionError::TransactionNotActive);
        }
        let parent = state.parent;

        for entry in &mut self.objects {
            // Version handling.
            if let Some((owner, _)) = entry.pending.last() {
                if *owner == txn {
                    let (_, value) = entry.pending.pop().expect("checked non-empty");
                    if commit {
                        match (parent, entry.pending.last_mut()) {
                            (Some(p), Some((o, slot))) if *o == p => *slot = value,
                            (Some(p), _) => entry.pending.push((p, value)),
                            (None, _) => {
                                entry.committed = value.clone();
                                entry.history.push(value);
                                entry.commits += 1;
                            }
                        }
                    } else {
                        entry.aborts += 1;
                    }
                }
            }
            // Lock handling.
            if entry.lock.last() == Some(&txn) {
                entry.lock.pop();
                if let Some(p) = parent {
                    if entry.lock.last() != Some(&p) {
                        // Parent inherits the lock until it finishes
                        // (strict 2PL across the nesting chain).
                        entry.lock.push(p);
                    }
                }
            }
        }

        let state = self.txns.get_mut(&txn).expect("present above");
        state.status = if commit {
            TxnStatus::Committed
        } else {
            TxnStatus::Aborted
        };
        if let Some(p) = parent {
            if let Some(ps) = self.txns.get_mut(&p) {
                ps.active_children = ps.active_children.saturating_sub(1);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> (Store<i64>, ObjectId) {
        let mut s = Store::new();
        let obj = s.define("x", 10);
        (s, obj)
    }

    #[test]
    fn define_and_lookup() {
        let (s, obj) = store();
        assert_eq!(s.object_id("x"), Some(obj));
        assert_eq!(s.object_id("y"), None);
        assert_eq!(s.committed(obj), 10);
    }

    #[test]
    #[should_panic(expected = "already defined")]
    fn duplicate_definition_panics() {
        let (mut s, _) = store();
        s.define("x", 0);
    }

    #[test]
    fn read_your_own_writes_with_isolation() {
        let (mut s, obj) = store();
        let t = s.begin_top_level();
        assert_eq!(s.read(t, obj).unwrap(), 10);
        s.write(t, obj, 20).unwrap();
        assert_eq!(s.read(t, obj).unwrap(), 20);
        assert_eq!(s.committed(obj), 10);
    }

    #[test]
    fn commit_publishes_abort_discards() {
        let (mut s, obj) = store();
        let t1 = s.begin_top_level();
        s.write(t1, obj, 20).unwrap();
        s.commit(t1).unwrap();
        assert_eq!(s.committed(obj), 20);
        assert_eq!(s.commit_count(obj), 1);

        let t2 = s.begin_top_level();
        s.write(t2, obj, 99).unwrap();
        s.abort(t2).unwrap();
        assert_eq!(s.committed(obj), 20);
        assert_eq!(s.abort_count(obj), 1);
    }

    #[test]
    fn lock_conflict_between_competitors() {
        let (mut s, obj) = store();
        let t1 = s.begin_top_level();
        let t2 = s.begin_top_level();
        s.write(t1, obj, 1).unwrap();
        assert!(matches!(
            s.read(t2, obj),
            Err(ActionError::LockConflict { .. })
        ));
        // After t1 finishes, t2 proceeds.
        s.commit(t1).unwrap();
        assert_eq!(s.read(t2, obj).unwrap(), 1);
    }

    #[test]
    fn nested_sees_parent_writes() {
        let (mut s, obj) = store();
        let parent = s.begin_top_level();
        s.write(parent, obj, 30).unwrap();
        let child = s.begin_nested(parent).unwrap();
        assert_eq!(s.read(child, obj).unwrap(), 30);
    }

    #[test]
    fn nested_commit_merges_into_parent_only() {
        let (mut s, obj) = store();
        let parent = s.begin_top_level();
        let child = s.begin_nested(parent).unwrap();
        s.write(child, obj, 40).unwrap();
        s.commit(child).unwrap();
        // Visible to parent, not committed globally.
        assert_eq!(s.read(parent, obj).unwrap(), 40);
        assert_eq!(s.committed(obj), 10);
        s.commit(parent).unwrap();
        assert_eq!(s.committed(obj), 40);
    }

    #[test]
    fn nested_abort_leaves_parent_state() {
        let (mut s, obj) = store();
        let parent = s.begin_top_level();
        s.write(parent, obj, 30).unwrap();
        let child = s.begin_nested(parent).unwrap();
        s.write(child, obj, 99).unwrap();
        s.abort(child).unwrap();
        assert_eq!(s.read(parent, obj).unwrap(), 30);
        s.commit(parent).unwrap();
        assert_eq!(s.committed(obj), 30);
    }

    #[test]
    fn abort_cascades_to_active_children() {
        let (mut s, obj) = store();
        let parent = s.begin_top_level();
        let child = s.begin_nested(parent).unwrap();
        let grandchild = s.begin_nested(child).unwrap();
        s.write(grandchild, obj, 77).unwrap();
        s.abort(parent).unwrap();
        assert!(!s.is_active(child));
        assert!(!s.is_active(grandchild));
        assert_eq!(s.committed(obj), 10);
        // Lock fully released: a fresh transaction may proceed.
        let fresh = s.begin_top_level();
        assert_eq!(s.read(fresh, obj).unwrap(), 10);
    }

    #[test]
    fn commit_with_active_children_is_rejected() {
        let (mut s, _) = store();
        let parent = s.begin_top_level();
        let _child = s.begin_nested(parent).unwrap();
        assert_eq!(s.commit(parent), Err(ActionError::TransactionNotActive));
    }

    #[test]
    fn operations_on_finished_transactions_fail() {
        let (mut s, obj) = store();
        let t = s.begin_top_level();
        s.commit(t).unwrap();
        assert_eq!(s.read(t, obj), Err(ActionError::TransactionNotActive));
        assert_eq!(s.write(t, obj, 5), Err(ActionError::TransactionNotActive));
        assert_eq!(s.commit(t), Err(ActionError::TransactionNotActive));
        assert_eq!(
            s.begin_nested(t).err(),
            Some(ActionError::TransactionNotActive)
        );
    }

    #[test]
    fn unknown_transaction_is_reported() {
        let (mut s, obj) = store();
        let ghost = TxnId(999);
        assert_eq!(s.read(ghost, obj), Err(ActionError::UnknownTransaction));
    }

    #[test]
    fn lock_passes_down_and_back_up_the_chain() {
        let (mut s, obj) = store();
        let parent = s.begin_top_level();
        s.write(parent, obj, 1).unwrap();
        let child = s.begin_nested(parent).unwrap();
        s.write(child, obj, 2).unwrap();
        // A competitor conflicts while the chain holds the lock.
        let rival = s.begin_top_level();
        assert!(s.read(rival, obj).is_err());
        s.commit(child).unwrap();
        // Parent still holds the lock after child commit.
        assert!(s.read(rival, obj).is_err());
        s.commit(parent).unwrap();
        assert_eq!(s.read(rival, obj).unwrap(), 2);
    }

    #[test]
    fn sibling_nested_transactions_are_serialized() {
        let (mut s, obj) = store();
        let parent = s.begin_top_level();
        let c1 = s.begin_nested(parent).unwrap();
        let c2 = s.begin_nested(parent).unwrap();
        s.write(c1, obj, 5).unwrap();
        // c2 cannot access while its sibling holds the lock.
        assert!(matches!(
            s.read(c2, obj),
            Err(ActionError::LockConflict { .. })
        ));
        s.commit(c1).unwrap();
        // After c1 commits the lock is the parent's; the sibling (a
        // descendant of the parent) may now acquire it.
        assert_eq!(s.read(c2, obj).unwrap(), 5);
        s.commit(c2).unwrap();
        s.commit(parent).unwrap();
    }

    #[test]
    fn retries_succeed_against_a_transient_conflict() {
        let (mut s, obj) = store();
        // A rival holds the lock for the first attempt only.
        let rival = s.begin_top_level();
        s.write(rival, obj, 5).unwrap();
        let mut attempt = 0;
        let result = s.with_retries(3, |s, txn| {
            attempt += 1;
            if attempt == 1 {
                // First try: rival still holds the lock.
                s.read(txn, obj)?; // LockConflict
                unreachable!()
            }
            let v = s.read(txn, obj)?;
            s.write(txn, obj, v + 1)?;
            Ok(v + 1)
        });
        // First attempt conflicted; release the rival... but retries
        // run eagerly, so release must happen inside. Instead verify
        // exhaustion here:
        assert!(matches!(result, Err(ActionError::RetriesExhausted { .. })));
        s.commit(rival).unwrap();
        // With the rival gone, one attempt suffices.
        let v = s
            .with_retries(1, |s, txn| {
                let v = s.read(txn, obj)?;
                s.write(txn, obj, v + 1)?;
                Ok(v + 1)
            })
            .unwrap();
        assert_eq!(v, 6);
        assert_eq!(s.committed(obj), 6);
    }

    #[test]
    fn retries_exhausted_reports_attempt_count() {
        let (mut s, _obj) = store();
        let err = s
            .with_retries(4, |_s, _txn| -> Result<(), ActionError> {
                Err(ActionError::ConversationFailed)
            })
            .unwrap_err();
        assert_eq!(err, ActionError::RetriesExhausted { attempts: 4 });
    }

    #[test]
    fn committed_history_records_every_top_level_commit() {
        let (mut s, obj) = store();
        for v in [20, 30, 40] {
            let t = s.begin_top_level();
            s.write(t, obj, v).unwrap();
            s.commit(t).unwrap();
        }
        assert_eq!(s.committed_history(obj), &[20, 30, 40]);
        // Aborts leave no trace in the history.
        let t = s.begin_top_level();
        s.write(t, obj, 99).unwrap();
        s.abort(t).unwrap();
        assert_eq!(s.committed_history(obj), &[20, 30, 40]);
    }

    #[test]
    fn read_committed_ignores_locks_and_pending_writes() {
        let (mut s, obj) = store();
        let t = s.begin_top_level();
        s.write(t, obj, 777).unwrap();
        // Snapshot read needs no transaction and sees no dirty data.
        assert_eq!(s.read_committed(obj), 10);
        assert_eq!(s.lock_holder(obj), Some(t));
        s.commit(t).unwrap();
        assert_eq!(s.read_committed(obj), 777);
        assert_eq!(s.lock_holder(obj), None);
    }

    #[test]
    fn forward_recovery_repairs_into_new_state() {
        // Fig. 2a: a handler aborts the damaged attempt, starts a fresh
        // transaction and installs a repaired state.
        let (mut s, obj) = store();
        let attempt = s.begin_top_level();
        s.write(attempt, obj, -1).unwrap(); // erroneous state
        s.abort(attempt).unwrap(); // handler: abort
        let repair = s.begin_top_level(); // handler: start
        s.write(repair, obj, 42).unwrap(); // repaired state
        s.commit(repair).unwrap(); // handler: commit
        assert_eq!(s.committed(obj), 42);
    }
}
