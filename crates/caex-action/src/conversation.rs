//! Conversations: joint backward error recovery with acceptance tests.
//!
//! A conversation (§2.2, originally Randell 1975) is the
//! backward-recovery leg of a CA action: every participant checkpoints
//! its state on entry, participants inside may only communicate with
//! each other, and all leave together once every acceptance test
//! passes. If any test fails, **all** participants roll back to their
//! checkpoints and run the next alternate (recovery-block style). The
//! `start`/`abort`/`commit` of Fig. 2b happen implicitly around each
//! attempt.
//!
//! # Examples
//!
//! ```
//! use caex_action::conversation::Conversation;
//!
//! # fn main() -> Result<(), caex_action::ActionError> {
//! // Two participants each hold an integer state.
//! let mut conv = Conversation::new(vec![10_i64, 20]);
//! // Primary overshoots; the alternate lands within bounds.
//! conv.attempt(|states| {
//!     states[0] += 1000;
//!     states[1] += 1000;
//! });
//! conv.attempt(|states| {
//!     states[0] += 1;
//!     states[1] += 1;
//! });
//! let report = conv.run(|states| states.iter().all(|&s| s < 100))?;
//! assert_eq!(report.accepted_attempt, 1); // alternate succeeded
//! assert_eq!(report.states, vec![11, 21]);
//! # Ok(())
//! # }
//! ```

use crate::ActionError;

type Attempt<S> = Box<dyn FnMut(&mut [S]) + Send>;

/// Outcome of a successful conversation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConversationReport<S> {
    /// Index of the attempt (0 = primary) whose acceptance test passed.
    pub accepted_attempt: usize,
    /// Number of attempts that were rolled back before success.
    pub rollbacks: usize,
    /// The accepted final states, in participant order.
    pub states: Vec<S>,
}

/// A conversation over `S`-typed participant states with a list of
/// alternates. See the [module documentation](self) for semantics.
pub struct Conversation<S> {
    states: Vec<S>,
    attempts: Vec<Attempt<S>>,
}

impl<S: std::fmt::Debug> std::fmt::Debug for Conversation<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Conversation")
            .field("participants", &self.states.len())
            .field("attempts", &self.attempts.len())
            .finish()
    }
}

impl<S: Clone> Conversation<S> {
    /// Creates a conversation whose participants start in `states`
    /// (one entry per participant). Entry checkpoints are taken from
    /// these states when [`run`](Self::run) begins.
    #[must_use]
    pub fn new(states: Vec<S>) -> Self {
        Conversation {
            states,
            attempts: Vec::new(),
        }
    }

    /// Number of participants.
    #[must_use]
    pub fn participants(&self) -> usize {
        self.states.len()
    }

    /// Appends an attempt: the primary first, then alternates in
    /// decreasing preference (recovery-block order).
    pub fn attempt<F>(&mut self, body: F) -> &mut Self
    where
        F: FnMut(&mut [S]) + Send + 'static,
    {
        self.attempts.push(Box::new(body));
        self
    }

    /// Runs attempts in order until `acceptance` passes on the joint
    /// state. Each failed attempt rolls *all* participants back to the
    /// entry checkpoint — the coordinated rollback that distinguishes a
    /// conversation from independent recovery blocks.
    ///
    /// # Errors
    ///
    /// Returns [`ActionError::ConversationFailed`] when every attempt
    /// fails; participant states are left at the entry checkpoint (the
    /// conversation as a whole then signals a failure exception to its
    /// containing action).
    pub fn run<A>(&mut self, acceptance: A) -> Result<ConversationReport<S>, ActionError>
    where
        A: Fn(&[S]) -> bool,
    {
        let checkpoint = self.states.clone();
        for (i, attempt) in self.attempts.iter_mut().enumerate() {
            attempt(&mut self.states);
            if acceptance(&self.states) {
                return Ok(ConversationReport {
                    accepted_attempt: i,
                    // Every preceding attempt was rolled back.
                    rollbacks: i,
                    states: self.states.clone(),
                });
            }
            // Coordinated rollback of every participant.
            self.states.clone_from(&checkpoint);
        }
        Err(ActionError::ConversationFailed)
    }

    /// The current participant states (the entry states before `run`,
    /// the accepted states after a successful `run`, the checkpoint
    /// after a failed one).
    #[must_use]
    pub fn states(&self) -> &[S] {
        &self.states
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_success_needs_no_rollback() {
        let mut conv = Conversation::new(vec![1, 2, 3]);
        conv.attempt(|s| s.iter_mut().for_each(|x| *x += 1));
        let report = conv.run(|s| s == [2, 3, 4]).unwrap();
        assert_eq!(report.accepted_attempt, 0);
        assert_eq!(report.rollbacks, 0);
    }

    #[test]
    fn failed_primary_rolls_all_participants_back() {
        let mut conv = Conversation::new(vec![0, 0]);
        conv.attempt(|s| {
            s[0] = 999; // poisons participant 0
            s[1] = 1;
        });
        conv.attempt(|s| {
            s[0] = 1;
            s[1] = 1;
        });
        let report = conv.run(|s| s.iter().all(|&x| x < 10)).unwrap();
        assert_eq!(report.accepted_attempt, 1);
        assert_eq!(report.rollbacks, 1);
        // Participant 1's partial progress from the failed attempt was
        // rolled back too, not just the failing participant's.
        assert_eq!(report.states, vec![1, 1]);
    }

    #[test]
    fn all_attempts_failing_restores_checkpoint() {
        let mut conv = Conversation::new(vec![7]);
        conv.attempt(|s| s[0] = 100);
        conv.attempt(|s| s[0] = 200);
        let err = conv.run(|s| s[0] < 10).unwrap_err();
        assert_eq!(err, ActionError::ConversationFailed);
        assert_eq!(conv.states(), &[7]);
    }

    #[test]
    fn no_attempts_fails_immediately() {
        let mut conv: Conversation<i32> = Conversation::new(vec![1]);
        assert_eq!(
            conv.run(|_| true).unwrap_err(),
            ActionError::ConversationFailed
        );
    }

    #[test]
    fn acceptance_sees_joint_state() {
        // The acceptance test is a predicate over ALL participants —
        // a conversation-wide test, not per-process.
        let mut conv = Conversation::new(vec![5, 5]);
        conv.attempt(|s| {
            s[0] = 10;
            s[1] = 0;
        });
        // Sum preserved => accept.
        let report = conv.run(|s| s.iter().sum::<i32>() == 10).unwrap();
        assert_eq!(report.states, vec![10, 0]);
    }

    #[test]
    fn attempts_observe_exchange_between_participants() {
        // Participants may exchange information inside the conversation:
        // here participant 1 derives its state from participant 0's.
        let mut conv = Conversation::new(vec![3, 0]);
        conv.attempt(|s| s[1] = s[0] * 2);
        let report = conv.run(|s| s[1] == 6).unwrap();
        assert_eq!(report.states, vec![3, 6]);
    }

    #[test]
    fn debug_renders() {
        let conv: Conversation<i32> = Conversation::new(vec![1, 2]);
        assert!(format!("{conv:?}").contains("participants"));
    }
}
