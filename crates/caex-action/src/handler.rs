//! Handler tables: a participant's responses to the exceptions of one
//! CA action.

use crate::ActionError;
use caex_net::SimTime;
use caex_tree::{Exception, ExceptionId, ExceptionTree};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// What a (non-abortion) exception handler achieved — the termination
/// model of §3.1: "handlers take over the duties of participating
/// objects in a CA action and complete the action either successfully
/// or by signalling a failure exception to the containing action".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandlerOutcome {
    /// Cooperative recovery succeeded; the action completes normally.
    Recovered,
    /// Recovery failed; signal this failure exception to the containing
    /// action.
    Signal(Exception),
}

/// What an abortion handler achieved when its nested action was aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbortionOutcome {
    /// The nested action was undone without raising anything further.
    Aborted,
    /// The abortion handler signals this exception to the containing
    /// action (only honoured for the *directly* nested action, §4.1).
    Signal(Exception),
}

type Handler = Box<dyn FnMut(&Exception) -> HandlerOutcome + Send>;
type AbortionHandler = Box<dyn FnMut() -> AbortionOutcome + Send>;

/// How a handler was installed: declaratively (pure data — cheap to
/// copy and introspect) or as an opaque user closure.
enum Installed {
    Declared(HandlerOutcome),
    Opaque(Handler),
}

enum InstalledAbortion {
    Declared(AbortionOutcome),
    Opaque(AbortionHandler),
}

/// One participant's handlers for one CA action.
///
/// The paper's central structural assumption (§3.3) is that **every
/// participant has a handler for every exception declared with the
/// action** — this is what removes the CR algorithm's "third source" of
/// exceptions and its domino effect. [`validate_complete`] enforces it.
///
/// Each handler carries a virtual-time cost so the simulator can account
/// for handler execution time (the paper notes resolution "may suffer
/// some delays because of the execution of abortion handlers", §4.4).
///
/// [`validate_complete`]: HandlerTable::validate_complete
///
/// # Examples
///
/// ```
/// use caex_action::{HandlerOutcome, HandlerTable};
/// use caex_net::SimTime;
/// use caex_tree::{aircraft_tree, Exception};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), caex_action::ActionError> {
/// let tree = Arc::new(aircraft_tree());
/// let emergency = tree.id_of("emergency_engine_loss_exception").unwrap();
/// let mut table = HandlerTable::recover_all(Arc::clone(&tree));
/// table.on(emergency, SimTime::from_micros(500), |_exc| {
///     HandlerOutcome::Recovered
/// });
/// table.validate_complete()?;
/// let (outcome, cost) = table.invoke(&Exception::new(emergency));
/// assert_eq!(outcome, HandlerOutcome::Recovered);
/// assert_eq!(cost, SimTime::from_micros(500));
/// # Ok(())
/// # }
/// ```
pub struct HandlerTable {
    tree: Arc<ExceptionTree>,
    handlers: HashMap<ExceptionId, (Installed, SimTime)>,
    abortion: Option<(InstalledAbortion, SimTime)>,
}

impl fmt::Debug for HandlerTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HandlerTable")
            .field("exceptions", &self.tree.len())
            .field("handlers", &self.handlers.len())
            .field("has_abortion_handler", &self.abortion.is_some())
            .finish()
    }
}

impl HandlerTable {
    /// Creates an empty table over `tree`. Must be filled (or created
    /// via [`recover_all`](Self::recover_all)) before it passes
    /// [`validate_complete`](Self::validate_complete).
    #[must_use]
    pub fn new(tree: Arc<ExceptionTree>) -> Self {
        HandlerTable {
            tree,
            handlers: HashMap::new(),
            abortion: None,
        }
    }

    /// Creates a table with a zero-cost `Recovered` handler for every
    /// exception in the tree and a zero-cost clean abortion handler —
    /// a valid baseline to override selectively. The baseline is fully
    /// declarative (see [`is_declarative`](Self::is_declarative)).
    #[must_use]
    pub fn recover_all(tree: Arc<ExceptionTree>) -> Self {
        let mut table = HandlerTable::new(tree);
        for id in table.tree.clone().iter() {
            table.on_outcome(id, SimTime::ZERO, HandlerOutcome::Recovered);
        }
        table.on_abort_outcome(SimTime::ZERO, AbortionOutcome::Aborted);
        table
    }

    /// The exception tree this table covers.
    #[must_use]
    pub fn tree(&self) -> &Arc<ExceptionTree> {
        &self.tree
    }

    /// Registers (or replaces) the handler for `exception`, with the
    /// given virtual-time execution cost.
    pub fn on<F>(&mut self, exception: ExceptionId, cost: SimTime, handler: F)
    where
        F: FnMut(&Exception) -> HandlerOutcome + Send + 'static,
    {
        // An arbitrary closure may be stateful or input-dependent; its
        // behavior cannot be stated as data.
        self.handlers
            .insert(exception, (Installed::Opaque(Box::new(handler)), cost));
    }

    /// Registers (or replaces) the handler for `exception` as a fixed,
    /// stated outcome rather than an opaque closure.
    ///
    /// Declaratively installed handlers behave identically to closures
    /// at run time, but their behavior stays introspectable
    /// ([`declared_outcome`](Self::declared_outcome)) and the table
    /// copyable ([`clone_declarative`](Self::clone_declarative)) — which
    /// is what allows the static model checker to explore a scenario's
    /// handler responses without executing user code.
    pub fn on_outcome(&mut self, exception: ExceptionId, cost: SimTime, outcome: HandlerOutcome) {
        self.handlers
            .insert(exception, (Installed::Declared(outcome), cost));
    }

    /// Registers a handler by the exception's declared *name* — the
    /// ergonomic form for trees built with
    /// [`ExceptionTree::parse`](caex_tree::ExceptionTree::parse).
    ///
    /// # Errors
    ///
    /// Returns the tree's error if `name` is not declared.
    ///
    /// # Examples
    ///
    /// ```
    /// use caex_action::{HandlerOutcome, HandlerTable};
    /// use caex_net::SimTime;
    /// use caex_tree::ExceptionTree;
    /// use std::sync::Arc;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let tree = Arc::new(ExceptionTree::parse("root(overload)")?);
    /// let mut table = HandlerTable::recover_all(Arc::clone(&tree));
    /// table.on_named("overload", SimTime::ZERO, |_| HandlerOutcome::Recovered)?;
    /// # Ok(())
    /// # }
    /// ```
    pub fn on_named<F>(
        &mut self,
        name: &str,
        cost: SimTime,
        handler: F,
    ) -> Result<(), caex_tree::TreeError>
    where
        F: FnMut(&Exception) -> HandlerOutcome + Send + 'static,
    {
        let id = self.tree.id_of(name)?;
        self.on(id, cost, handler);
        Ok(())
    }

    /// Registers (or replaces) the abortion handler for this action.
    pub fn on_abort<F>(&mut self, cost: SimTime, handler: F)
    where
        F: FnMut() -> AbortionOutcome + Send + 'static,
    {
        self.abortion = Some((InstalledAbortion::Opaque(Box::new(handler)), cost));
    }

    /// Registers (or replaces) the abortion handler as a fixed, stated
    /// outcome — the declarative counterpart of
    /// [`on_abort`](Self::on_abort), see
    /// [`on_outcome`](Self::on_outcome).
    pub fn on_abort_outcome(&mut self, cost: SimTime, outcome: AbortionOutcome) {
        self.abortion = Some((InstalledAbortion::Declared(outcome), cost));
    }

    /// The stated outcome for `exception`, if its handler was installed
    /// declaratively; `None` for opaque closures and missing handlers.
    #[must_use]
    pub fn declared_outcome(&self, exception: ExceptionId) -> Option<&HandlerOutcome> {
        match self.handlers.get(&exception) {
            Some((Installed::Declared(outcome), _)) => Some(outcome),
            _ => None,
        }
    }

    /// The stated abortion outcome, if the abortion handler was
    /// installed declaratively.
    #[must_use]
    pub fn declared_abort_outcome(&self) -> Option<&AbortionOutcome> {
        match &self.abortion {
            Some((InstalledAbortion::Declared(outcome), _)) => Some(outcome),
            _ => None,
        }
    }

    /// `true` when every registered handler (and the abortion handler,
    /// if any) was installed declaratively, so the table's complete
    /// behavior is stated as data.
    #[must_use]
    pub fn is_declarative(&self) -> bool {
        self.handlers
            .values()
            .all(|(installed, _)| matches!(installed, Installed::Declared(_)))
            && !matches!(&self.abortion, Some((InstalledAbortion::Opaque(_), _)))
    }

    /// Builds an independent copy of a fully declarative table.
    ///
    /// Handler tables may hold boxed closures and are deliberately not
    /// `Clone`; a declarative table's behavior is pure data, so a
    /// faithful copy *can* be materialized — without allocating any
    /// closures, which keeps the model checker's state forks cheap.
    /// Returns `None` when any handler is opaque.
    #[must_use]
    pub fn clone_declarative(&self) -> Option<HandlerTable> {
        let mut handlers = HashMap::with_capacity(self.handlers.len());
        for (&id, (installed, cost)) in &self.handlers {
            match installed {
                Installed::Declared(outcome) => {
                    handlers.insert(id, (Installed::Declared(outcome.clone()), *cost));
                }
                Installed::Opaque(_) => return None,
            }
        }
        let abortion = match &self.abortion {
            None => None,
            Some((InstalledAbortion::Declared(outcome), cost)) => {
                Some((InstalledAbortion::Declared(outcome.clone()), *cost))
            }
            Some((InstalledAbortion::Opaque(_), _)) => return None,
        };
        Some(HandlerTable {
            tree: Arc::clone(&self.tree),
            handlers,
            abortion,
        })
    }

    /// `true` if a specific handler is registered for `exception`.
    #[must_use]
    pub fn handles(&self, exception: ExceptionId) -> bool {
        self.handlers.contains_key(&exception)
    }

    /// `true` if an abortion handler is registered.
    #[must_use]
    pub fn has_abortion_handler(&self) -> bool {
        self.abortion.is_some()
    }

    /// Verifies the paper's completeness requirement: a handler for
    /// every exception declared in the action's tree.
    ///
    /// # Errors
    ///
    /// Returns [`ActionError::MissingHandler`] naming the first
    /// uncovered exception.
    pub fn validate_complete(&self) -> Result<(), ActionError> {
        for id in self.tree.iter() {
            if !self.handlers.contains_key(&id) {
                return Err(ActionError::MissingHandler { exception: id });
            }
        }
        Ok(())
    }

    /// Invokes the handler for the occurrence's exception class and
    /// returns its outcome together with its virtual-time cost.
    ///
    /// # Panics
    ///
    /// Panics if no handler is registered for the class — call
    /// [`validate_complete`](Self::validate_complete) at setup time; a
    /// missing handler at invocation time is a programming error, which
    /// is exactly the failure mode the paper's completeness assumption
    /// exists to exclude.
    pub fn invoke(&mut self, occurrence: &Exception) -> (HandlerOutcome, SimTime) {
        let (handler, cost) = self
            .handlers
            .get_mut(&occurrence.id())
            .unwrap_or_else(|| panic!("no handler for exception {}", occurrence.id()));
        let outcome = match handler {
            Installed::Declared(outcome) => outcome.clone(),
            Installed::Opaque(closure) => closure(occurrence),
        };
        (outcome, *cost)
    }

    /// Invokes the abortion handler, returning its outcome and cost.
    /// Without a registered handler the abort is treated as clean and
    /// free.
    pub fn invoke_abortion(&mut self) -> (AbortionOutcome, SimTime) {
        match &mut self.abortion {
            Some((InstalledAbortion::Declared(outcome), cost)) => (outcome.clone(), *cost),
            Some((InstalledAbortion::Opaque(closure), cost)) => (closure(), *cost),
            None => (AbortionOutcome::Aborted, SimTime::ZERO),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caex_tree::{aircraft_tree, chain_tree};

    #[test]
    fn empty_table_fails_validation() {
        let table = HandlerTable::new(Arc::new(chain_tree(2)));
        assert!(matches!(
            table.validate_complete(),
            Err(ActionError::MissingHandler { .. })
        ));
    }

    #[test]
    fn recover_all_passes_validation() {
        let table = HandlerTable::recover_all(Arc::new(chain_tree(5)));
        assert!(table.validate_complete().is_ok());
        assert!(table.has_abortion_handler());
    }

    #[test]
    fn invoke_dispatches_to_registered_handler() {
        let tree = Arc::new(aircraft_tree());
        let left = tree.id_of("left_engine_exception").unwrap();
        let mut table = HandlerTable::recover_all(Arc::clone(&tree));
        table.on(left, SimTime::from_micros(7), move |exc| {
            HandlerOutcome::Signal(exc.clone())
        });
        let occurrence = Exception::new(left).with_origin("test");
        let (outcome, cost) = table.invoke(&occurrence);
        assert_eq!(outcome, HandlerOutcome::Signal(occurrence));
        assert_eq!(cost, SimTime::from_micros(7));
    }

    #[test]
    fn handlers_can_mutate_captured_state() {
        let tree = Arc::new(chain_tree(1));
        let e1 = ExceptionId::new(1);
        let mut table = HandlerTable::recover_all(Arc::clone(&tree));
        let mut calls = 0;
        table.on(e1, SimTime::ZERO, move |_| {
            calls += 1;
            if calls < 2 {
                HandlerOutcome::Signal(Exception::new(e1))
            } else {
                HandlerOutcome::Recovered
            }
        });
        assert!(matches!(
            table.invoke(&Exception::new(e1)).0,
            HandlerOutcome::Signal(_)
        ));
        assert_eq!(
            table.invoke(&Exception::new(e1)).0,
            HandlerOutcome::Recovered
        );
    }

    #[test]
    #[should_panic(expected = "no handler for exception")]
    fn invoke_without_handler_panics() {
        let mut table = HandlerTable::new(Arc::new(chain_tree(1)));
        table.invoke(&Exception::new(ExceptionId::new(1)));
    }

    #[test]
    fn abortion_defaults_to_clean() {
        let mut table = HandlerTable::new(Arc::new(chain_tree(1)));
        assert!(!table.has_abortion_handler());
        let (outcome, cost) = table.invoke_abortion();
        assert_eq!(outcome, AbortionOutcome::Aborted);
        assert_eq!(cost, SimTime::ZERO);
    }

    #[test]
    fn abortion_can_signal() {
        let tree = Arc::new(chain_tree(2));
        let e2 = ExceptionId::new(2);
        let mut table = HandlerTable::recover_all(Arc::clone(&tree));
        table.on_abort(SimTime::from_micros(11), move || {
            AbortionOutcome::Signal(Exception::new(e2))
        });
        let (outcome, cost) = table.invoke_abortion();
        assert_eq!(outcome, AbortionOutcome::Signal(Exception::new(e2)));
        assert_eq!(cost, SimTime::from_micros(11));
    }

    #[test]
    fn debug_shows_coverage() {
        let table = HandlerTable::recover_all(Arc::new(chain_tree(2)));
        let shown = format!("{table:?}");
        assert!(shown.contains("handlers"));
    }

    #[test]
    fn recover_all_is_fully_declarative() {
        let table = HandlerTable::recover_all(Arc::new(chain_tree(3)));
        assert!(table.is_declarative());
        for id in table.tree().clone().iter() {
            assert_eq!(
                table.declared_outcome(id),
                Some(&HandlerOutcome::Recovered)
            );
        }
        assert_eq!(
            table.declared_abort_outcome(),
            Some(&AbortionOutcome::Aborted)
        );
    }

    #[test]
    fn opaque_closures_forfeit_declarativeness() {
        let tree = Arc::new(chain_tree(2));
        let e1 = ExceptionId::new(1);
        let mut table = HandlerTable::recover_all(Arc::clone(&tree));
        table.on(e1, SimTime::ZERO, |_| HandlerOutcome::Recovered);
        assert!(!table.is_declarative());
        assert!(table.declared_outcome(e1).is_none());
        assert!(table.clone_declarative().is_none());
        // Re-declaring restores it.
        table.on_outcome(e1, SimTime::ZERO, HandlerOutcome::Recovered);
        assert!(table.is_declarative());
        let mut opaque_abort = HandlerTable::recover_all(tree);
        opaque_abort.on_abort(SimTime::ZERO, || AbortionOutcome::Aborted);
        assert!(!opaque_abort.is_declarative());
    }

    #[test]
    fn declarative_clone_replays_outcomes_and_costs() {
        let tree = Arc::new(chain_tree(3));
        let e1 = ExceptionId::new(1);
        let e3 = ExceptionId::new(3);
        let mut table = HandlerTable::recover_all(Arc::clone(&tree));
        table.on_outcome(
            e1,
            SimTime::from_micros(9),
            HandlerOutcome::Signal(Exception::new(e3)),
        );
        table.on_abort_outcome(
            SimTime::from_micros(4),
            AbortionOutcome::Signal(Exception::new(e1)),
        );
        let mut copy = table.clone_declarative().unwrap();
        assert!(copy.validate_complete().is_ok());
        let (outcome, cost) = copy.invoke(&Exception::new(e1));
        assert_eq!(outcome, HandlerOutcome::Signal(Exception::new(e3)));
        assert_eq!(cost, SimTime::from_micros(9));
        let (abort, abort_cost) = copy.invoke_abortion();
        assert_eq!(abort, AbortionOutcome::Signal(Exception::new(e1)));
        assert_eq!(abort_cost, SimTime::from_micros(4));
    }
}
