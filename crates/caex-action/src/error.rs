//! Error type for the CA action framework.

use crate::ActionId;
use caex_net::NodeId;
use caex_tree::ExceptionId;
use std::error::Error;
use std::fmt;

/// Errors produced by action declaration, handler registration and the
/// atomic-object substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ActionError {
    /// An [`ActionId`] is not declared in the registry.
    UnknownAction(ActionId),
    /// The parent named by a nested declaration is not declared.
    UnknownParent(ActionId),
    /// A nested action's participants are not a subset of its parent's.
    ParticipantsNotNested {
        /// The offending nested action.
        action: ActionId,
        /// A participant not present in the parent action.
        object: NodeId,
    },
    /// An action was declared with no participants.
    NoParticipants,
    /// The object is not a participant of the action.
    NotAParticipant {
        /// The action consulted.
        action: ActionId,
        /// The non-member object.
        object: NodeId,
    },
    /// A handler table is missing a handler for a declared exception —
    /// the paper requires handlers for *all* declared exceptions (§3.3).
    MissingHandler {
        /// The uncovered exception.
        exception: ExceptionId,
    },
    /// Two actions are not on one nesting chain.
    NotOnOneChain(ActionId, ActionId),
    /// A transactional operation conflicted with a lock held by another
    /// transaction (competing concurrency).
    LockConflict {
        /// Name of the contended atomic object.
        object: String,
    },
    /// A transactional operation referenced an unknown transaction.
    UnknownTransaction,
    /// An operation used a transaction that is not active (already
    /// committed or aborted).
    TransactionNotActive,
    /// An acceptance test failed on every alternate of a conversation.
    ConversationFailed,
    /// Every attempt of a retried transaction failed.
    RetriesExhausted {
        /// How many attempts were made.
        attempts: u32,
    },
}

impl fmt::Display for ActionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionError::UnknownAction(a) => write!(f, "unknown action {a}"),
            ActionError::UnknownParent(a) => write!(f, "unknown parent action {a}"),
            ActionError::ParticipantsNotNested { action, object } => write!(
                f,
                "participant {object} of nested action {action} is not in the parent action"
            ),
            ActionError::NoParticipants => write!(f, "action declared with no participants"),
            ActionError::NotAParticipant { action, object } => {
                write!(f, "object {object} is not a participant of action {action}")
            }
            ActionError::MissingHandler { exception } => {
                write!(f, "no handler declared for exception {exception}")
            }
            ActionError::NotOnOneChain(a, b) => {
                write!(f, "actions {a} and {b} are not on one nesting chain")
            }
            ActionError::LockConflict { object } => {
                write!(f, "lock conflict on atomic object `{object}`")
            }
            ActionError::UnknownTransaction => write!(f, "unknown transaction"),
            ActionError::TransactionNotActive => write!(f, "transaction is not active"),
            ActionError::ConversationFailed => {
                write!(
                    f,
                    "all conversation alternates failed their acceptance test"
                )
            }
            ActionError::RetriesExhausted { attempts } => {
                write!(f, "transaction failed after {attempts} attempts")
            }
        }
    }
}

impl Error for ActionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        let e = ActionError::LockConflict {
            object: "account".into(),
        };
        assert!(e.to_string().contains("account"));
        let e = ActionError::MissingHandler {
            exception: ExceptionId::new(4),
        };
        assert!(e.to_string().contains("e4"));
    }

    #[test]
    fn is_std_error_send_sync() {
        fn check<E: Error + Send + Sync + 'static>(_: E) {}
        check(ActionError::NoParticipants);
    }
}
