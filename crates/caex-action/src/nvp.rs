//! N-version programming — the second of the paper's "two basic
//! techniques for building fault-tolerant software" (§2.1, Avižienis).
//!
//! `N` independently designed versions of a computation run on the same
//! input; an adjudicator (here: exact-match majority voting, the
//! classic choice) selects the result. The paper's §4.4 notes that the
//! Arche exception model "can be used for NVP-type schemes" — the
//! [`caex::arche`-style comparison] builds on this module.
//!
//! [`caex::arche`-style comparison]: crate
//!
//! # Examples
//!
//! ```
//! use caex_action::nvp::NVersion;
//!
//! # fn main() -> Result<(), caex_action::ActionError> {
//! let mut nvp: NVersion<i64, i64> = NVersion::new();
//! nvp.version(|x| Ok(x * 2))
//!    .version(|x| Ok(x * 2))
//!    .version(|x| Ok(x + 1)); // the buggy minority version
//! let verdict = nvp.execute(21)?;
//! assert_eq!(verdict.output, 42);
//! assert_eq!(verdict.agreeing, 2);
//! # Ok(())
//! # }
//! ```

use crate::ActionError;
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

type Version<I, O> = Box<dyn FnMut(I) -> Result<O, ActionError> + Send>;

/// The adjudicated outcome of one N-version execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict<O> {
    /// The majority output.
    pub output: O,
    /// How many versions produced it.
    pub agreeing: usize,
    /// How many versions ran (failures included).
    pub total: usize,
    /// Indices of versions that returned an error instead of a value.
    pub failed_versions: Vec<usize>,
}

/// An N-version computation from `I` to `O` with majority voting. See
/// the [module docs](self).
pub struct NVersion<I, O> {
    versions: Vec<Version<I, O>>,
}

impl<I, O> fmt::Debug for NVersion<I, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NVersion")
            .field("versions", &self.versions.len())
            .finish()
    }
}

impl<I, O> Default for NVersion<I, O> {
    fn default() -> Self {
        NVersion {
            versions: Vec::new(),
        }
    }
}

impl<I: Clone, O: Clone + Eq + Hash> NVersion<I, O> {
    /// Creates an empty N-version set.
    #[must_use]
    pub fn new() -> Self {
        NVersion::default()
    }

    /// Number of registered versions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// `true` if no versions are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Registers one independently designed version.
    pub fn version<F>(&mut self, body: F) -> &mut Self
    where
        F: FnMut(I) -> Result<O, ActionError> + Send + 'static,
    {
        self.versions.push(Box::new(body));
        self
    }

    /// Runs every version on (a clone of) `input` and adjudicates by
    /// strict majority (> half of *all* versions, the conservative
    /// rule: erroring versions count against the majority).
    ///
    /// # Errors
    ///
    /// [`ActionError::ConversationFailed`] when no output achieves a
    /// strict majority — the NVP unit as a whole fails, exactly the
    /// situation whose exception the enclosing CA action would resolve.
    pub fn execute(&mut self, input: I) -> Result<Verdict<O>, ActionError> {
        assert!(!self.versions.is_empty(), "no versions registered");
        let total = self.versions.len();
        let mut counts: HashMap<O, usize> = HashMap::new();
        let mut order: Vec<O> = Vec::new();
        let mut failed_versions = Vec::new();
        for (i, version) in self.versions.iter_mut().enumerate() {
            match version(input.clone()) {
                Ok(output) => {
                    let seen = counts.contains_key(&output);
                    *counts.entry(output.clone()).or_insert(0) += 1;
                    if !seen {
                        order.push(output);
                    }
                }
                Err(_) => failed_versions.push(i),
            }
        }
        // Deterministic winner selection: first output (in production
        // order) reaching the strict majority.
        for output in order {
            let agreeing = counts[&output];
            if agreeing * 2 > total {
                return Ok(Verdict {
                    output,
                    agreeing,
                    total,
                    failed_versions,
                });
            }
        }
        Err(ActionError::ConversationFailed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_versions_agree() {
        let mut nvp: NVersion<u32, u32> = NVersion::new();
        nvp.version(|x| Ok(x + 1))
            .version(|x| Ok(x + 1))
            .version(|x| Ok(x + 1));
        let v = nvp.execute(1).unwrap();
        assert_eq!(v.output, 2);
        assert_eq!(v.agreeing, 3);
        assert!(v.failed_versions.is_empty());
    }

    #[test]
    fn majority_outvotes_a_faulty_version() {
        let mut nvp: NVersion<u32, u32> = NVersion::new();
        nvp.version(Ok).version(Ok).version(|x| Ok(x + 999));
        let v = nvp.execute(7).unwrap();
        assert_eq!(v.output, 7);
        assert_eq!(v.agreeing, 2);
    }

    #[test]
    fn erroring_version_counts_against_majority() {
        let mut nvp: NVersion<u32, u32> = NVersion::new();
        nvp.version(Ok)
            .version(|_| Err(ActionError::ConversationFailed))
            .version(|_| Err(ActionError::ConversationFailed));
        // 1 of 3 is not a strict majority.
        assert_eq!(nvp.execute(7).unwrap_err(), ActionError::ConversationFailed);
    }

    #[test]
    fn two_two_split_has_no_majority() {
        let mut nvp: NVersion<u32, u32> = NVersion::new();
        nvp.version(Ok)
            .version(Ok)
            .version(|x| Ok(x + 1))
            .version(|x| Ok(x + 1));
        assert!(nvp.execute(0).is_err());
    }

    #[test]
    fn failed_versions_are_reported_by_index() {
        let mut nvp: NVersion<u32, u32> = NVersion::new();
        nvp.version(Ok)
            .version(|_| Err(ActionError::ConversationFailed))
            .version(Ok);
        let v = nvp.execute(3).unwrap();
        assert_eq!(v.failed_versions, vec![1]);
        assert_eq!(v.total, 3);
    }

    #[test]
    #[should_panic(expected = "no versions registered")]
    fn empty_set_panics() {
        let mut nvp: NVersion<u32, u32> = NVersion::new();
        let _ = nvp.execute(0);
    }
}
