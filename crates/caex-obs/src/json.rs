//! A minimal, dependency-free JSON document model with a writer and a
//! recursive-descent parser.
//!
//! The vendored `serde` shim is a compile-time marker only (the build
//! environment has no registry access, see the workspace manifest), so
//! every JSON artifact this crate produces — JSONL logs, Chrome
//! traces, metric snapshots, `BENCH_PR2.json` — goes through this
//! module. Objects keep insertion order, which keeps output
//! deterministic and diffs stable.

use std::fmt;

/// A JSON value. Numbers are `f64` (integers up to 2^53 round-trip
/// exactly, far beyond any counter in this workspace).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Builds a number value from an unsigned integer.
    #[allow(clippy::cast_precision_loss)] // counters stay far below 2^53
    #[must_use]
    pub fn num(n: u64) -> JsonValue {
        JsonValue::Num(n as f64)
    }

    /// Looks up a key in an object; `None` for other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's fields, if it is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            JsonValue::Str(s) => write_escaped(f, s),
            JsonValue::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first syntax
/// problem, or of trailing non-whitespace input.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing input"));
    }
    Ok(value)
}

fn err(at: usize, message: &str) -> JsonError {
    JsonError { at, message: message.to_owned() }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, what: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == what {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{}`", what as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected `{literal}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| err(start, "invalid utf-8 in number"))?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| err(start, "invalid number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        // Surrogate pairs are not produced by this
                        // crate's writer; map lone surrogates to the
                        // replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 code point.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(err(*pos, "expected `,` or `}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_parses_nested_document() {
        let doc = JsonValue::Obj(vec![
            ("name".into(), JsonValue::str("caex")),
            ("n".into(), JsonValue::num(42)),
            ("pi".into(), JsonValue::Num(2.5)),
            ("ok".into(), JsonValue::Bool(true)),
            ("none".into(), JsonValue::Null),
            (
                "items".into(),
                JsonValue::Arr(vec![JsonValue::num(1), JsonValue::str("a\"b\\c\n")]),
            ),
        ]);
        let text = doc.to_string();
        let back = parse(&text).expect("round trip");
        assert_eq!(back, doc);
        assert_eq!(back.get("n").and_then(JsonValue::as_u64), Some(42));
        assert_eq!(back.get("pi").and_then(JsonValue::as_f64), Some(2.5));
        assert_eq!(
            back.get("items").and_then(JsonValue::as_array).map(<[JsonValue]>::len),
            Some(2)
        );
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(JsonValue::num(7).to_string(), "7");
        assert_eq!(JsonValue::Num(1.5).to_string(), "1.5");
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse("\"a\\u0041\\n\\t\\\"\"").expect("valid");
        assert_eq!(v.as_str(), Some("aA\n\t\""));
    }

    #[test]
    fn parses_whitespace_and_negatives() {
        let v = parse(" { \"a\" : [ -3 , 2e2 ] } ").expect("valid");
        let arr = v.get("a").and_then(JsonValue::as_array).expect("array");
        assert_eq!(arr[0].as_f64(), Some(-3.0));
        assert_eq!(arr[1].as_f64(), Some(200.0));
    }
}
