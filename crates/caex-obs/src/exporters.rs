//! Exporters over the event stream: a JSONL structured log and a
//! Chrome trace-event document (`B`/`E` span pairs, one track per
//! participant) loadable in `chrome://tracing` or Perfetto.

use crate::event::{CorrelationId, ObsEvent, ObsKind, ObsState, Observer};
use crate::json::JsonValue;
use caex_action::ActionId;
use caex_net::{NodeId, SimTime};
use caex_tree::ExceptionId;
use std::collections::{BTreeMap, BTreeSet};

/// Renders one [`ObsEvent`] as a flat JSON object. Shared by the JSONL
/// exporter and tests; keys are stable.
#[must_use]
pub fn event_to_json(event: &ObsEvent) -> JsonValue {
    let mut fields = vec![
        ("at_us".to_owned(), JsonValue::num(event.at.as_micros())),
        (
            "wall_us".to_owned(),
            event.wall_micros.map_or(JsonValue::Null, JsonValue::num),
        ),
        ("object".to_owned(), JsonValue::str(event.object.to_string())),
        (
            "action".to_owned(),
            JsonValue::num(u64::from(event.span.action.index())),
        ),
        ("round".to_owned(), JsonValue::num(u64::from(event.span.round))),
        ("span".to_owned(), JsonValue::str(event.span.to_string())),
        ("kind".to_owned(), JsonValue::str(event.kind.label())),
    ];
    match &event.kind {
        ObsKind::Raise { exception }
        | ObsKind::HandlerStart { exception }
        | ObsKind::ActionFailed { exception } => {
            fields.push((
                "exception".to_owned(),
                JsonValue::str(format!("e{}", exception.index())),
            ));
        }
        ObsKind::StateTransition { from, to } => {
            fields.push(("from".to_owned(), JsonValue::str(from.to_string())));
            fields.push(("to".to_owned(), JsonValue::str(to.to_string())));
        }
        ObsKind::ResolverElected { resolver } => {
            fields.push((
                "resolver".to_owned(),
                JsonValue::str(resolver.to_string()),
            ));
        }
        ObsKind::ResolutionCommit { resolved, raised } => {
            fields.push((
                "resolved".to_owned(),
                JsonValue::str(format!("e{}", resolved.index())),
            ));
            fields.push(("raised".to_owned(), JsonValue::num(u64::from(*raised))));
        }
        ObsKind::AbortionStart { depth } => {
            fields.push(("depth".to_owned(), JsonValue::num(u64::from(*depth))));
        }
        ObsKind::HandlerEnd { signalled } => {
            fields.push(("signalled".to_owned(), JsonValue::Bool(*signalled)));
        }
        ObsKind::MessageSent { kind, to } => {
            fields.push(("msg".to_owned(), JsonValue::str(*kind)));
            fields.push(("to".to_owned(), JsonValue::str(to.to_string())));
        }
        ObsKind::MessageReceived { kind, from } => {
            fields.push(("msg".to_owned(), JsonValue::str(*kind)));
            fields.push(("from".to_owned(), JsonValue::str(from.to_string())));
        }
        ObsKind::ResolverSuspected { resolver } => {
            fields.push((
                "resolver".to_owned(),
                JsonValue::str(resolver.to_string()),
            ));
        }
        ObsKind::PeerSuspected { peer } | ObsKind::PeerRejoined { peer } => {
            fields.push(("peer".to_owned(), JsonValue::str(peer.to_string())));
        }
        ObsKind::ResolverReelected { resolver, replaced } => {
            fields.push((
                "resolver".to_owned(),
                JsonValue::str(resolver.to_string()),
            ));
            fields.push((
                "replaced".to_owned(),
                JsonValue::str(replaced.to_string()),
            ));
        }
        ObsKind::ActionEnter
        | ObsKind::ActionLeave
        | ObsKind::ResolutionStart
        | ObsKind::AbortionEnd => {}
    }
    JsonValue::Obj(fields)
}

fn parse_object(s: &str) -> Option<NodeId> {
    s.strip_prefix('O')?.parse().ok().map(NodeId::new)
}

fn parse_exception(s: &str) -> Option<ExceptionId> {
    s.strip_prefix('e')?.parse().ok().map(ExceptionId::new)
}

/// Interns a wire-kind label back to the `&'static str` the typed
/// event carries (`ObsKind::MessageSent` uses statics as counter
/// keys). Covers the §4.2 protocol kinds plus the baseline engines'
/// (`central`, `cr`) wire kinds, so any engine's recorded stream
/// round-trips.
fn intern_msg_kind(s: &str) -> Option<&'static str> {
    [
        "exception",
        "have_nested",
        "nested_completed",
        "ack",
        "commit",
        "leave_ready",
        "central_report",
        "central_commit",
        "cr_exception",
        "cr_ack",
        "cr_proposal",
        "cr_commit",
    ]
    .into_iter()
    .find(|k| *k == s)
}

/// Parses the flat JSON object produced by [`event_to_json`] back into
/// a typed [`ObsEvent`] — the collector side of a socket exporter
/// stream rebuilds typed events this way so the merged stream can be
/// replayed into the `MetricsRegistry`/`Watchdog` stack.
///
/// # Errors
///
/// Returns a description of the first missing or malformed field.
pub fn event_from_json(doc: &JsonValue) -> Result<ObsEvent, String> {
    let str_field = |key: &str| -> Result<&str, String> {
        doc.get(key)
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("missing string field `{key}`"))
    };
    let num_field = |key: &str| -> Result<u64, String> {
        doc.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("missing numeric field `{key}`"))
    };
    let exc_field = |key: &str| -> Result<ExceptionId, String> {
        let s = str_field(key)?;
        parse_exception(s).ok_or_else(|| format!("bad exception `{s}` in `{key}`"))
    };
    let at = SimTime::from_micros(num_field("at_us")?);
    let wall_micros = doc.get("wall_us").and_then(JsonValue::as_u64);
    let object_str = str_field("object")?;
    let object =
        parse_object(object_str).ok_or_else(|| format!("bad object `{object_str}`"))?;
    let action = ActionId::new(
        u32::try_from(num_field("action")?).map_err(|_| "action out of range".to_owned())?,
    );
    let round = u32::try_from(num_field("round")?).map_err(|_| "round out of range".to_owned())?;
    let kind = match str_field("kind")? {
        "action_enter" => ObsKind::ActionEnter,
        "action_leave" => ObsKind::ActionLeave,
        "raise" => ObsKind::Raise { exception: exc_field("exception")? },
        "state_transition" => {
            let from = ObsState::parse(str_field("from")?)
                .ok_or_else(|| "bad `from` state".to_owned())?;
            let to =
                ObsState::parse(str_field("to")?).ok_or_else(|| "bad `to` state".to_owned())?;
            ObsKind::StateTransition { from, to }
        }
        "resolution_start" => ObsKind::ResolutionStart,
        "resolver_elected" => {
            let resolver = parse_object(str_field("resolver")?)
                .ok_or_else(|| "bad `resolver`".to_owned())?;
            ObsKind::ResolverElected { resolver }
        }
        "resolution_commit" => ObsKind::ResolutionCommit {
            resolved: exc_field("resolved")?,
            raised: u32::try_from(num_field("raised")?)
                .map_err(|_| "raised out of range".to_owned())?,
        },
        "abortion_start" => ObsKind::AbortionStart {
            depth: u32::try_from(num_field("depth")?)
                .map_err(|_| "depth out of range".to_owned())?,
        },
        "abortion_end" => ObsKind::AbortionEnd,
        "handler_start" => ObsKind::HandlerStart { exception: exc_field("exception")? },
        "handler_end" => ObsKind::HandlerEnd {
            signalled: doc
                .get("signalled")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| "missing bool field `signalled`".to_owned())?,
        },
        "message_sent" => {
            let msg = str_field("msg")?;
            ObsKind::MessageSent {
                kind: intern_msg_kind(msg)
                    .ok_or_else(|| format!("unknown message kind `{msg}`"))?,
                to: parse_object(str_field("to")?).ok_or_else(|| "bad `to`".to_owned())?,
            }
        }
        "message_received" => {
            let msg = str_field("msg")?;
            ObsKind::MessageReceived {
                kind: intern_msg_kind(msg)
                    .ok_or_else(|| format!("unknown message kind `{msg}`"))?,
                from: parse_object(str_field("from")?)
                    .ok_or_else(|| "bad `from`".to_owned())?,
            }
        }
        "action_failed" => ObsKind::ActionFailed { exception: exc_field("exception")? },
        "resolver_suspected" => {
            let resolver = parse_object(str_field("resolver")?)
                .ok_or_else(|| "bad `resolver`".to_owned())?;
            ObsKind::ResolverSuspected { resolver }
        }
        "peer_suspected" => ObsKind::PeerSuspected {
            peer: parse_object(str_field("peer")?).ok_or_else(|| "bad `peer`".to_owned())?,
        },
        "peer_rejoined" => ObsKind::PeerRejoined {
            peer: parse_object(str_field("peer")?).ok_or_else(|| "bad `peer`".to_owned())?,
        },
        "resolver_reelected" => ObsKind::ResolverReelected {
            resolver: parse_object(str_field("resolver")?)
                .ok_or_else(|| "bad `resolver`".to_owned())?,
            replaced: parse_object(str_field("replaced")?)
                .ok_or_else(|| "bad `replaced`".to_owned())?,
        },
        other => return Err(format!("unknown event kind `{other}`")),
    };
    Ok(ObsEvent {
        at,
        wall_micros,
        object,
        span: CorrelationId { action, round },
        kind,
    })
}

/// Structured-log exporter: one JSON object per line, in event order.
#[derive(Debug, Default)]
pub struct JsonlExporter {
    lines: Vec<String>,
}

impl JsonlExporter {
    /// Creates an empty exporter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The log as one newline-terminated string.
    #[must_use]
    pub fn contents(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Number of lines logged so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// `true` if nothing has been logged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

impl Observer for JsonlExporter {
    fn on_event(&mut self, event: &ObsEvent) {
        self.lines.push(event_to_json(event).to_string());
    }
}

/// One open span on a participant's track.
#[derive(Debug, Clone)]
struct OpenSpan {
    name: String,
}

/// Chrome trace-event exporter.
///
/// Spans (`ActionEnter`/`ActionLeave`, `AbortionStart`/`AbortionEnd`,
/// `HandlerStart`/`HandlerEnd`) become `B`/`E` pairs on one track per
/// participant (`tid` = object index); point events (raises, elections,
/// commits, state transitions, failures) become instants (`ph:"i"`);
/// message send→receive causality becomes flow-event pairs (`ph:"s"`
/// on the sender's track, `ph:"f"` on the receiver's) so Perfetto
/// draws the arrows. `on_run_end` closes any still-open spans so the
/// document always has balanced pairs, and emits `M` metadata naming
/// each track after its participant. The result loads in Perfetto /
/// `chrome://tracing`.
#[derive(Debug, Default)]
pub struct ChromeTraceExporter {
    events: Vec<JsonValue>,
    open: BTreeMap<u64, Vec<OpenSpan>>, // tid -> span stack
    tracks: BTreeSet<u64>,
    // (from, to, kind, k) -> flow id; the k-th send and k-th receive of
    // one ordered channel share an id (exact under FIFO channels).
    flows: BTreeMap<(u64, u64, String, u64), u64>,
    next_flow_id: u64,
    sends_seen: BTreeMap<(u64, u64, String), u64>,
    recvs_seen: BTreeMap<(u64, u64, String), u64>,
    finished: bool,
}

const PID: u64 = 1;

fn ts_of(event: &ObsEvent) -> u64 {
    event.wall_micros.unwrap_or_else(|| event.at.as_micros())
}

fn trace_record(ph: &str, name: &str, cat: &str, ts: u64, tid: u64) -> JsonValue {
    let mut fields = vec![
        ("name".to_owned(), JsonValue::str(name)),
        ("cat".to_owned(), JsonValue::str(cat)),
        ("ph".to_owned(), JsonValue::str(ph)),
        ("ts".to_owned(), JsonValue::num(ts)),
        ("pid".to_owned(), JsonValue::num(PID)),
        ("tid".to_owned(), JsonValue::num(tid)),
    ];
    if ph == "i" {
        // Thread-scoped instant.
        fields.push(("s".to_owned(), JsonValue::str("t")));
    }
    JsonValue::Obj(fields)
}

impl ChromeTraceExporter {
    /// Creates an empty exporter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates (or looks up) the flow id shared by the k-th send and
    /// the k-th receive over the `(from, to, kind)` channel.
    fn flow_id(&mut self, from: u64, to: u64, kind: &str, k: u64) -> u64 {
        let key = (from, to, kind.to_owned(), k);
        if let Some(&id) = self.flows.get(&key) {
            return id;
        }
        self.next_flow_id += 1;
        let id = self.next_flow_id;
        self.flows.insert(key, id);
        id
    }

    /// Emits one flow event (`ph` = `"s"` or `"f"`) on `tid`'s track.
    fn flow_record(&mut self, ph: &str, kind: &str, id: u64, ts: u64, tid: u64) {
        let mut fields = vec![
            ("name".to_owned(), JsonValue::str(format!("msg {kind}"))),
            ("cat".to_owned(), JsonValue::str("message")),
            ("ph".to_owned(), JsonValue::str(ph)),
            ("id".to_owned(), JsonValue::num(id)),
            ("ts".to_owned(), JsonValue::num(ts)),
            ("pid".to_owned(), JsonValue::num(PID)),
            ("tid".to_owned(), JsonValue::num(tid)),
        ];
        if ph == "f" {
            // Bind the arrow head to the enclosing slice.
            fields.push(("bp".to_owned(), JsonValue::str("e")));
        }
        self.events.push(JsonValue::Obj(fields));
    }

    fn begin(&mut self, tid: u64, ts: u64, name: String, cat: &str) {
        self.events.push(trace_record("B", &name, cat, ts, tid));
        self.open.entry(tid).or_default().push(OpenSpan { name });
    }

    fn end(&mut self, tid: u64, ts: u64, cat: &str) {
        if let Some(span) = self.open.entry(tid).or_default().pop() {
            self.events.push(trace_record("E", &span.name, cat, ts, tid));
        }
        // An end with no matching begin is dropped: the watchdog (not
        // the exporter) reports unbalanced streams.
    }

    /// Renders the `{"traceEvents": [...]}` document. Call after
    /// `on_run_end`; open spans left by a deadlocked run are closed at
    /// the final timestamp first.
    #[must_use]
    pub fn to_json(&self) -> String {
        JsonValue::Obj(vec![(
            "traceEvents".to_owned(),
            JsonValue::Arr(self.events.clone()),
        )])
        .to_string()
    }

    /// The set of participant tracks (`tid`s) seen.
    #[must_use]
    pub fn tracks(&self) -> &BTreeSet<u64> {
        &self.tracks
    }
}

impl Observer for ChromeTraceExporter {
    fn on_event(&mut self, event: &ObsEvent) {
        let tid = u64::from(event.object.index());
        let ts = ts_of(event);
        if self.tracks.insert(tid) {
            // Name the track after the participant on first sight.
            let meta = vec![
                ("name".to_owned(), JsonValue::str("thread_name")),
                ("ph".to_owned(), JsonValue::str("M")),
                ("pid".to_owned(), JsonValue::num(PID)),
                ("tid".to_owned(), JsonValue::num(tid)),
                (
                    "args".to_owned(),
                    JsonValue::Obj(vec![(
                        "name".to_owned(),
                        JsonValue::str(event.object.to_string()),
                    )]),
                ),
            ];
            self.events.push(JsonValue::Obj(meta));
        }
        let action = event.span.action;
        match &event.kind {
            ObsKind::ActionEnter => {
                self.begin(tid, ts, action.to_string(), "action");
            }
            ObsKind::ActionLeave => {
                self.end(tid, ts, "action");
            }
            ObsKind::AbortionStart { .. } => {
                self.begin(tid, ts, format!("abort {action}"), "abortion");
            }
            ObsKind::AbortionEnd => {
                self.end(tid, ts, "abortion");
            }
            ObsKind::HandlerStart { exception } => {
                self.begin(
                    tid,
                    ts,
                    format!("handle e{} ({})", exception.index(), event.span),
                    "handler",
                );
            }
            ObsKind::HandlerEnd { .. } => {
                self.end(tid, ts, "handler");
            }
            ObsKind::Raise { exception } => {
                self.events.push(trace_record(
                    "i",
                    &format!("raise e{} ({})", exception.index(), event.span),
                    "raise",
                    ts,
                    tid,
                ));
            }
            ObsKind::StateTransition { from, to } => {
                self.events.push(trace_record(
                    "i",
                    &format!("{from}\u{2192}{to}"),
                    "state",
                    ts,
                    tid,
                ));
            }
            ObsKind::ResolutionStart => {
                self.events.push(trace_record(
                    "i",
                    &format!("resolution start ({})", event.span),
                    "resolution",
                    ts,
                    tid,
                ));
            }
            ObsKind::ResolverElected { resolver } => {
                self.events.push(trace_record(
                    "i",
                    &format!("resolver {resolver} ({})", event.span),
                    "resolution",
                    ts,
                    tid,
                ));
            }
            ObsKind::ResolutionCommit { resolved, .. } => {
                self.events.push(trace_record(
                    "i",
                    &format!("commit e{} ({})", resolved.index(), event.span),
                    "resolution",
                    ts,
                    tid,
                ));
            }
            ObsKind::ActionFailed { exception } => {
                self.events.push(trace_record(
                    "i",
                    &format!("failed e{}", exception.index()),
                    "failure",
                    ts,
                    tid,
                ));
            }
            ObsKind::MessageSent { kind, to } => {
                // Spans for sends would drown the view; a flow arrow
                // carries the causality instead.
                let to = u64::from(to.index());
                let k = self
                    .sends_seen
                    .entry((tid, to, (*kind).to_owned()))
                    .or_insert(0);
                let nth = *k;
                *k += 1;
                let id = self.flow_id(tid, to, kind, nth);
                self.flow_record("s", kind, id, ts, tid);
            }
            ObsKind::MessageReceived { kind, from } => {
                let from = u64::from(from.index());
                let k = self
                    .recvs_seen
                    .entry((from, tid, (*kind).to_owned()))
                    .or_insert(0);
                let nth = *k;
                *k += 1;
                let id = self.flow_id(from, tid, kind, nth);
                self.flow_record("f", kind, id, ts, tid);
            }
            ObsKind::ResolverSuspected { resolver } => {
                self.events.push(trace_record(
                    "i",
                    &format!("resolver {resolver} suspected ({})", event.span),
                    "failover",
                    ts,
                    tid,
                ));
            }
            ObsKind::ResolverReelected { resolver, replaced } => {
                self.events.push(trace_record(
                    "i",
                    &format!(
                        "resolver {resolver} re-elected for {replaced} ({})",
                        event.span
                    ),
                    "failover",
                    ts,
                    tid,
                ));
            }
            ObsKind::PeerSuspected { peer } => {
                self.events.push(trace_record(
                    "i",
                    &format!("peer {peer} suspected"),
                    "failover",
                    ts,
                    tid,
                ));
            }
            ObsKind::PeerRejoined { peer } => {
                self.events.push(trace_record(
                    "i",
                    &format!("peer {peer} rejoined"),
                    "failover",
                    ts,
                    tid,
                ));
            }
        }
    }

    fn on_run_end(&mut self, at: SimTime) {
        if self.finished {
            return;
        }
        self.finished = true;
        let ts = at.as_micros();
        let tids: Vec<u64> = self.open.keys().copied().collect();
        for tid in tids {
            while self
                .open
                .get(&tid)
                .is_some_and(|stack| !stack.is_empty())
            {
                self.end(tid, ts, "action");
            }
        }
    }
}

/// Parses a trace document and checks that, per track, `B`/`E` events
/// form balanced LIFO pairs with non-decreasing timestamps and
/// matching names. Returns the number of `B`/`E` pairs checked.
///
/// # Errors
///
/// Returns a description of the first imbalance found.
pub fn check_balanced(doc: &JsonValue) -> Result<usize, String> {
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "missing traceEvents array".to_owned())?;
    let mut stacks: BTreeMap<u64, Vec<(String, u64)>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, u64> = BTreeMap::new();
    let mut pairs = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(JsonValue::as_str).unwrap_or("");
        if ph == "M" {
            continue;
        }
        let tid = ev
            .get("tid")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| "event without tid".to_owned())?;
        let ts = ev
            .get("ts")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| "event without ts".to_owned())?;
        let name = ev
            .get("name")
            .and_then(JsonValue::as_str)
            .unwrap_or("")
            .to_owned();
        if let Some(&prev) = last_ts.get(&tid) {
            if ts < prev {
                return Err(format!(
                    "track {tid}: timestamp {ts} decreases below {prev}"
                ));
            }
        }
        last_ts.insert(tid, ts);
        match ph {
            "B" => stacks.entry(tid).or_default().push((name, ts)),
            "E" => {
                let Some((open_name, open_ts)) =
                    stacks.entry(tid).or_default().pop()
                else {
                    return Err(format!("track {tid}: E `{name}` without open B"));
                };
                if open_name != name {
                    return Err(format!(
                        "track {tid}: E `{name}` closes B `{open_name}`"
                    ));
                }
                if ts < open_ts {
                    return Err(format!(
                        "track {tid}: span `{name}` ends at {ts} before it begins at {open_ts}"
                    ));
                }
                pairs += 1;
            }
            _ => {}
        }
    }
    for (tid, stack) in &stacks {
        if let Some((name, _)) = stack.last() {
            return Err(format!("track {tid}: B `{name}` never closed"));
        }
    }
    Ok(pairs)
}

/// Checks that the document's flow events form balanced send/receive
/// pairs: every `ph:"f"` must share its `id` with exactly one earlier
/// `ph:"s"`, and no id may be used twice in either role. Returns the
/// number of complete pairs. Flow starts without a finish are legal
/// (the message may have been dropped or the victim crashed) and are
/// not counted.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn check_flow_pairs(doc: &JsonValue) -> Result<usize, String> {
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "missing traceEvents array".to_owned())?;
    let mut started: BTreeMap<u64, bool> = BTreeMap::new(); // id -> finished
    let mut pairs = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(JsonValue::as_str).unwrap_or("");
        if ph != "s" && ph != "f" {
            continue;
        }
        let id = ev
            .get("id")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("flow event `{ph}` without id"))?;
        match ph {
            "s" => {
                if started.insert(id, false).is_some() {
                    return Err(format!("flow id {id} started twice"));
                }
            }
            _ => match started.get_mut(&id) {
                None => return Err(format!("flow id {id} finishes before it starts")),
                Some(done) if *done => {
                    return Err(format!("flow id {id} finished twice"));
                }
                Some(done) => {
                    *done = true;
                    pairs += 1;
                }
            },
        }
    }
    Ok(pairs)
}

/// The set of track ids (`tid`s) present in a trace document,
/// metadata rows included.
#[must_use]
pub fn track_ids(doc: &JsonValue) -> BTreeSet<u64> {
    doc.get("traceEvents")
        .and_then(JsonValue::as_array)
        .map(|events| {
            events
                .iter()
                .filter_map(|ev| ev.get("tid").and_then(JsonValue::as_u64))
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CorrelationId;
    use crate::json;
    use caex_action::ActionId;
    use caex_net::NodeId;
    use caex_tree::ExceptionId;

    fn ev(at: u64, object: u32, kind: ObsKind) -> ObsEvent {
        ObsEvent {
            at: SimTime::from_micros(at),
            wall_micros: None,
            object: NodeId::new(object),
            span: CorrelationId { action: ActionId::new(1), round: 1 },
            kind,
        }
    }

    #[test]
    fn jsonl_lines_are_valid_json() {
        let mut log = JsonlExporter::new();
        log.on_event(&ev(3, 0, ObsKind::ActionEnter));
        log.on_event(&ev(
            5,
            0,
            ObsKind::Raise { exception: ExceptionId::new(2) },
        ));
        let contents = log.contents();
        assert_eq!(log.len(), 2);
        for line in contents.lines() {
            let doc = json::parse(line).expect("valid json line");
            assert!(doc.get("kind").is_some());
            assert_eq!(doc.get("action").and_then(JsonValue::as_u64), Some(1));
        }
        assert!(contents.contains("\"exception\":\"e2\""));
    }

    #[test]
    fn chrome_trace_is_balanced_and_named() {
        let mut trace = ChromeTraceExporter::new();
        trace.on_event(&ev(0, 0, ObsKind::ActionEnter));
        trace.on_event(&ev(0, 1, ObsKind::ActionEnter));
        trace.on_event(&ev(
            4,
            1,
            ObsKind::HandlerStart { exception: ExceptionId::new(1) },
        ));
        trace.on_event(&ev(9, 1, ObsKind::HandlerEnd { signalled: false }));
        trace.on_event(&ev(9, 1, ObsKind::ActionLeave));
        trace.on_event(&ev(9, 0, ObsKind::ActionLeave));
        trace.on_run_end(SimTime::from_micros(10));

        let doc = json::parse(&trace.to_json()).expect("valid trace json");
        assert_eq!(check_balanced(&doc), Ok(3));
        assert_eq!(track_ids(&doc).len(), 2);
        assert!(trace.to_json().contains("thread_name"));
        assert!(trace.to_json().contains("\"name\":\"O1\""));
    }

    #[test]
    fn run_end_closes_open_spans() {
        let mut trace = ChromeTraceExporter::new();
        trace.on_event(&ev(0, 2, ObsKind::ActionEnter));
        trace.on_event(&ev(
            1,
            2,
            ObsKind::AbortionStart { depth: 1 },
        ));
        trace.on_run_end(SimTime::from_micros(7));
        let doc = json::parse(&trace.to_json()).expect("valid");
        assert_eq!(check_balanced(&doc), Ok(2));
    }

    #[test]
    fn every_kind_round_trips_through_json() {
        use crate::event::ObsState;
        let kinds = vec![
            ObsKind::ActionEnter,
            ObsKind::ActionLeave,
            ObsKind::Raise { exception: ExceptionId::new(2) },
            ObsKind::StateTransition { from: ObsState::N, to: ObsState::X },
            ObsKind::ResolutionStart,
            ObsKind::ResolverElected { resolver: NodeId::new(2) },
            ObsKind::ResolutionCommit { resolved: ExceptionId::new(1), raised: 2 },
            ObsKind::AbortionStart { depth: 3 },
            ObsKind::AbortionEnd,
            ObsKind::HandlerStart { exception: ExceptionId::new(4) },
            ObsKind::HandlerEnd { signalled: true },
            ObsKind::MessageSent { kind: "nested_completed", to: NodeId::new(1) },
            ObsKind::MessageReceived { kind: "exception", from: NodeId::new(3) },
            ObsKind::ActionFailed { exception: ExceptionId::new(5) },
        ];
        for kind in kinds {
            let original = ObsEvent {
                at: SimTime::from_micros(42),
                wall_micros: Some(43),
                object: NodeId::new(7),
                span: CorrelationId { action: ActionId::new(3), round: 2 },
                kind,
            };
            let line = event_to_json(&original).to_string();
            let parsed = json::parse(&line).expect("valid json");
            let back = event_from_json(&parsed).expect("round trip");
            assert_eq!(back, original);
        }
    }

    #[test]
    fn event_from_json_rejects_malformed_docs() {
        for bad in [
            r#"{"kind":"raise"}"#,
            r#"{"at_us":1,"object":"O0","action":0,"round":0,"kind":"warp"}"#,
            r#"{"at_us":1,"object":"X9","action":0,"round":0,"kind":"action_enter"}"#,
            r#"{"at_us":1,"object":"O0","action":0,"round":0,"kind":"message_sent","msg":"gossip","to":"O1"}"#,
            r#"{"at_us":1,"object":"O0","action":0,"round":0,"kind":"message_received","msg":"exception","from":"?"}"#,
        ] {
            let doc = json::parse(bad).expect("valid json");
            assert!(event_from_json(&doc).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn flow_events_pair_sends_with_receives() {
        let mut trace = ChromeTraceExporter::new();
        trace.on_event(&ev(0, 0, ObsKind::ActionEnter));
        trace.on_event(&ev(0, 1, ObsKind::ActionEnter));
        // Two sends over the same channel, received in FIFO order.
        for t in [1, 2] {
            trace.on_event(&ev(
                t,
                0,
                ObsKind::MessageSent { kind: "exception", to: NodeId::new(1) },
            ));
        }
        for t in [3, 4] {
            trace.on_event(&ev(
                t,
                1,
                ObsKind::MessageReceived { kind: "exception", from: NodeId::new(0) },
            ));
        }
        trace.on_event(&ev(
            5,
            1,
            ObsKind::MessageSent { kind: "ack", to: NodeId::new(0) },
        ));
        trace.on_run_end(SimTime::from_micros(9));

        let doc = json::parse(&trace.to_json()).expect("valid trace json");
        // Both exception flows pair up; the unanswered ack send stays
        // a lone start, which is legal.
        assert_eq!(check_flow_pairs(&doc), Ok(2));
        // Flow events must not break span balance either.
        assert!(check_balanced(&doc).is_ok());
        assert!(trace.to_json().contains("\"ph\":\"s\""));
        assert!(trace.to_json().contains("\"bp\":\"e\""));
    }

    #[test]
    fn check_flow_pairs_rejects_orphan_finish() {
        let doc = json::parse(
            r#"{"traceEvents":[
                {"name":"msg ack","ph":"f","id":7,"ts":2,"pid":1,"tid":0,"bp":"e"}
            ]}"#,
        )
        .expect("valid json");
        assert!(check_flow_pairs(&doc).is_err());
    }

    #[test]
    fn check_balanced_rejects_mismatches() {
        let doc = json::parse(
            r#"{"traceEvents":[
                {"name":"A1","ph":"B","ts":1,"pid":1,"tid":0},
                {"name":"A2","ph":"E","ts":2,"pid":1,"tid":0}
            ]}"#,
        )
        .expect("valid json");
        assert!(check_balanced(&doc).is_err());
    }
}
