//! [`Watchdog`]: an observer that checks protocol invariants as the
//! event stream passes, flagging state-machine violations live rather
//! than post-hoc.
//!
//! Checked invariants:
//!
//! 1. **State edges** — only the §4.2 transitions reachable under
//!    pre/post sampling of `Participant::handle` are legal:
//!    `N→X`, `N→S`, `S→X`, `S→N`, `X→S`, `X→R`, `X→N`, `R→N`, `R→S`.
//!    Anything else (e.g. `R→X`: a ready object re-raising before the
//!    commit) is a violation.
//! 2. **Commit during abortion** — a handler must never start while
//!    the object's abortion span is still open: the resolver cannot
//!    have been ready while an `LO` entry was incomplete.
//! 3. **ACK overflow** — a participant can collect at most `N−1` ACKs
//!    per broadcast it made in a round; more means a peer acked twice
//!    or a stale ack leaked through.
//! 4. **Span balance** — `ActionLeave`, `AbortionEnd` and `HandlerEnd`
//!    must close a matching open span on the same object.
//! 5. **Commit multiplicity** — at most `expected_commits` resolvers
//!    may commit one round (1 unless a resolver group is configured).

use crate::event::{ObsEvent, ObsKind, ObsState, Observer};
use caex_action::ActionId;
use caex_net::NodeId;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// One invariant violation, with the offending event's coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Microsecond timestamp of the offending event.
    pub at_us: u64,
    /// The object the violation was observed at.
    pub object: NodeId,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}µs] {}: {}", self.at_us, self.object, self.message)
    }
}

/// The invariant-checking observer. Collects [`Violation`]s; a clean
/// run ends with [`Watchdog::is_clean`] true.
#[derive(Debug)]
pub struct Watchdog {
    expected_commits: u64,
    violations: Vec<Violation>,
    state: HashMap<NodeId, ObsState>,
    participants: HashMap<ActionId, BTreeSet<NodeId>>,
    // (action, round, receiver) -> acks seen so far
    acks_to: HashMap<(ActionId, u32, NodeId), u64>,
    // (action, round, sender) -> ack-expecting broadcasts (exception /
    // nested_completed multicast fan-out, counted per destination and
    // divided by N−1 is fragile; count multicast *starts* instead by
    // first destination of a burst).
    broadcasts: HashMap<(ActionId, u32, NodeId), BroadcastTally>,
    commits: HashMap<(ActionId, u32), u64>,
    open_actions: HashMap<NodeId, u64>,
    open_abortions: HashMap<NodeId, u64>,
    open_handlers: HashMap<NodeId, u64>,
}

/// Per-(round, sender) tally of ack-expecting sends, grouped into
/// broadcasts of `N−1` messages each.
#[derive(Debug, Default)]
struct BroadcastTally {
    sends: u64,
}

const LEGAL_EDGES: [(ObsState, ObsState); 9] = [
    (ObsState::N, ObsState::X),
    (ObsState::N, ObsState::S),
    (ObsState::S, ObsState::X),
    (ObsState::S, ObsState::N),
    (ObsState::X, ObsState::S),
    (ObsState::X, ObsState::R),
    (ObsState::X, ObsState::N),
    (ObsState::R, ObsState::N),
    (ObsState::R, ObsState::S),
];

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog::new()
    }
}

impl Watchdog {
    /// Creates a watchdog expecting a single resolver per round.
    #[must_use]
    pub fn new() -> Self {
        Watchdog {
            expected_commits: 1,
            violations: Vec::new(),
            state: HashMap::new(),
            participants: HashMap::new(),
            acks_to: HashMap::new(),
            broadcasts: HashMap::new(),
            commits: HashMap::new(),
            open_actions: HashMap::new(),
            open_abortions: HashMap::new(),
            open_handlers: HashMap::new(),
        }
    }

    /// Allows up to `count` commits per round (resolver groups).
    #[must_use]
    pub fn with_expected_commits(mut self, count: u64) -> Self {
        self.expected_commits = count.max(1);
        self
    }

    /// The violations recorded so far.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// `true` iff no invariant has been violated.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    fn flag(&mut self, event: &ObsEvent, message: String) {
        self.violations.push(Violation {
            at_us: event.at.as_micros(),
            object: event.object,
            message,
        });
    }
}

impl Observer for Watchdog {
    fn on_event(&mut self, event: &ObsEvent) {
        let object = event.object;
        match &event.kind {
            ObsKind::ActionEnter => {
                self.participants
                    .entry(event.span.action)
                    .or_default()
                    .insert(object);
                *self.open_actions.entry(object).or_insert(0) += 1;
            }
            ObsKind::ActionLeave => {
                let open = self.open_actions.entry(object).or_insert(0);
                if *open == 0 {
                    self.flag(
                        event,
                        format!(
                            "ActionLeave for {} with no open action span",
                            event.span.action
                        ),
                    );
                } else {
                    *open -= 1;
                }
            }
            ObsKind::StateTransition { from, to } => {
                let known = self.state.get(&object).copied().unwrap_or(ObsState::N);
                if known != *from {
                    self.flag(
                        event,
                        format!(
                            "transition {from}\u{2192}{to} but {object} was last \
                             observed in {known}"
                        ),
                    );
                }
                if !LEGAL_EDGES.contains(&(*from, *to)) {
                    self.flag(
                        event,
                        format!("illegal state transition {from}\u{2192}{to}"),
                    );
                }
                self.state.insert(object, *to);
            }
            ObsKind::AbortionStart { .. } => {
                *self.open_abortions.entry(object).or_insert(0) += 1;
            }
            ObsKind::AbortionEnd => {
                let open = self.open_abortions.entry(object).or_insert(0);
                if *open == 0 {
                    self.flag(event, "AbortionEnd with no open abortion".to_owned());
                } else {
                    *open -= 1;
                }
            }
            ObsKind::HandlerStart { .. } => {
                if self.open_abortions.get(&object).copied().unwrap_or(0) > 0 {
                    self.flag(
                        event,
                        format!(
                            "commit delivered to {object} while its abortion is \
                             still in progress (LO incomplete)"
                        ),
                    );
                }
                *self.open_handlers.entry(object).or_insert(0) += 1;
            }
            ObsKind::HandlerEnd { .. } => {
                let open = self.open_handlers.entry(object).or_insert(0);
                if *open == 0 {
                    self.flag(event, "HandlerEnd with no open handler".to_owned());
                } else {
                    *open -= 1;
                }
            }
            ObsKind::ResolutionCommit { .. } => {
                if event.span.round > 0 {
                    let commits = self
                        .commits
                        .entry((event.span.action, event.span.round))
                        .or_insert(0);
                    *commits += 1;
                    if *commits > self.expected_commits {
                        let total = *commits;
                        self.flag(
                            event,
                            format!(
                                "{} committed {total} times (expected at most {})",
                                event.span, self.expected_commits
                            ),
                        );
                    }
                }
            }
            ObsKind::MessageSent { kind, to } => {
                if event.span.round == 0 {
                    return;
                }
                let action = event.span.action;
                let round = event.span.round;
                // Broadcasts that expect an ACK per peer.
                if matches!(*kind, "exception" | "nested_completed") {
                    self.broadcasts
                        .entry((action, round, object))
                        .or_default()
                        .sends += 1;
                }
                if *kind == "ack" {
                    let n = self
                        .participants
                        .get(&action)
                        .map_or(0, |set| set.len() as u64);
                    let peers = n.saturating_sub(1);
                    let received = self
                        .acks_to
                        .entry((action, round, *to))
                        .or_insert(0);
                    *received += 1;
                    let broadcasts = self
                        .broadcasts
                        .get(&(action, round, *to))
                        .map_or(0, |b| {
                            if peers == 0 {
                                0
                            } else {
                                b.sends.div_ceil(peers)
                            }
                        });
                    let allowed = peers * broadcasts.max(1);
                    if peers > 0 && *received > allowed {
                        let received = *received;
                        self.flag(
                            event,
                            format!(
                                "{to} has been sent {received} ACKs in {} but made \
                                 {broadcasts} broadcast(s) of N\u{2212}1 = {peers}: \
                                 at most {allowed} are legal",
                                event.span
                            ),
                        );
                    }
                }
            }
            ObsKind::Raise { .. }
            | ObsKind::ResolutionStart
            | ObsKind::ResolverElected { .. }
            | ObsKind::ActionFailed { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CorrelationId;
    use caex_net::SimTime;
    use caex_tree::ExceptionId;

    fn ev(object: u32, round: u32, kind: ObsKind) -> ObsEvent {
        ObsEvent {
            at: SimTime::from_micros(1),
            wall_micros: None,
            object: NodeId::new(object),
            span: CorrelationId { action: ActionId::new(0), round },
            kind,
        }
    }

    #[test]
    fn clean_stream_stays_clean() {
        let mut dog = Watchdog::new();
        dog.on_event(&ev(0, 0, ObsKind::ActionEnter));
        dog.on_event(&ev(1, 0, ObsKind::ActionEnter));
        dog.on_event(&ev(
            0,
            1,
            ObsKind::StateTransition { from: ObsState::N, to: ObsState::X },
        ));
        dog.on_event(&ev(
            0,
            1,
            ObsKind::MessageSent { kind: "exception", to: NodeId::new(1) },
        ));
        dog.on_event(&ev(
            1,
            1,
            ObsKind::MessageSent { kind: "ack", to: NodeId::new(0) },
        ));
        dog.on_event(&ev(
            0,
            1,
            ObsKind::ResolutionCommit { resolved: ExceptionId::new(1), raised: 1 },
        ));
        dog.on_event(&ev(
            0,
            1,
            ObsKind::StateTransition { from: ObsState::X, to: ObsState::N },
        ));
        assert!(dog.is_clean(), "{:?}", dog.violations());
    }

    #[test]
    fn illegal_edge_is_flagged() {
        let mut dog = Watchdog::new();
        dog.on_event(&ev(
            0,
            1,
            ObsKind::StateTransition { from: ObsState::N, to: ObsState::X },
        ));
        dog.on_event(&ev(
            0,
            1,
            ObsKind::StateTransition { from: ObsState::X, to: ObsState::R },
        ));
        dog.on_event(&ev(
            0,
            1,
            ObsKind::StateTransition { from: ObsState::R, to: ObsState::X },
        ));
        assert_eq!(dog.violations().len(), 1);
        assert!(dog.violations()[0].message.contains("illegal state transition"));
    }

    #[test]
    fn stale_from_state_is_flagged() {
        let mut dog = Watchdog::new();
        dog.on_event(&ev(
            0,
            1,
            ObsKind::StateTransition { from: ObsState::S, to: ObsState::X },
        ));
        assert_eq!(dog.violations().len(), 1);
        assert!(dog.violations()[0].message.contains("last observed in N"));
    }

    #[test]
    fn ack_overflow_is_flagged() {
        let mut dog = Watchdog::new();
        for o in 0..3 {
            dog.on_event(&ev(o, 0, ObsKind::ActionEnter));
        }
        // O0 broadcasts one exception (2 sends)...
        for to in 1..3 {
            dog.on_event(&ev(
                0,
                1,
                ObsKind::MessageSent { kind: "exception", to: NodeId::new(to) },
            ));
        }
        // ...so two ACKs are fine, a third is an overflow.
        for _ in 0..2 {
            dog.on_event(&ev(
                1,
                1,
                ObsKind::MessageSent { kind: "ack", to: NodeId::new(0) },
            ));
        }
        assert!(dog.is_clean());
        dog.on_event(&ev(
            2,
            1,
            ObsKind::MessageSent { kind: "ack", to: NodeId::new(0) },
        ));
        assert_eq!(dog.violations().len(), 1);
        assert!(dog.violations()[0].message.contains("ACKs"));
    }

    #[test]
    fn commit_during_abortion_is_flagged() {
        let mut dog = Watchdog::new();
        dog.on_event(&ev(0, 1, ObsKind::AbortionStart { depth: 1 }));
        dog.on_event(&ev(
            0,
            1,
            ObsKind::HandlerStart { exception: ExceptionId::new(1) },
        ));
        assert_eq!(dog.violations().len(), 1);
        assert!(dog.violations()[0].message.contains("abortion"));
    }

    #[test]
    fn duplicate_commit_respects_expected_group() {
        let commit = ObsKind::ResolutionCommit {
            resolved: ExceptionId::new(1),
            raised: 1,
        };
        let mut dog = Watchdog::new();
        dog.on_event(&ev(0, 1, commit.clone()));
        dog.on_event(&ev(1, 1, commit.clone()));
        assert_eq!(dog.violations().len(), 1);

        let mut group = Watchdog::new().with_expected_commits(2);
        group.on_event(&ev(0, 1, commit.clone()));
        group.on_event(&ev(1, 1, commit));
        assert!(group.is_clean());
    }

    #[test]
    fn unbalanced_spans_are_flagged() {
        let mut dog = Watchdog::new();
        dog.on_event(&ev(0, 0, ObsKind::ActionLeave));
        dog.on_event(&ev(0, 0, ObsKind::AbortionEnd));
        dog.on_event(&ev(0, 0, ObsKind::HandlerEnd { signalled: false }));
        assert_eq!(dog.violations().len(), 3);
    }
}
