//! [`Watchdog`]: an observer that checks protocol invariants as the
//! event stream passes, flagging state-machine violations live rather
//! than post-hoc.
//!
//! Checked invariants:
//!
//! 1. **State edges** — only the §4.2 transitions reachable under
//!    pre/post sampling of `Participant::handle` are legal:
//!    `N→X`, `N→S`, `S→X`, `S→N`, `X→S`, `X→R`, `X→N`, `R→N`, `R→S`.
//!    Anything else (e.g. `R→X`: a ready object re-raising before the
//!    commit) is a violation.
//! 2. **Commit during abortion** — a handler must never start while
//!    the object's abortion span is still open: the resolver cannot
//!    have been ready while an `LO` entry was incomplete.
//! 3. **ACK overflow** — a participant can collect at most `N−1` ACKs
//!    per broadcast it made in a round; more means a peer acked twice
//!    or a stale ack leaked through.
//! 4. **Span balance** — `ActionLeave`, `AbortionEnd` and `HandlerEnd`
//!    must close a matching open span on the same object.
//! 5. **Commit multiplicity** — at most `expected_commits` resolvers
//!    may commit one round (1 unless a resolver group is configured).
//! 6. **§4.5 multicast law** (opt-in, [`Watchdog::with_multicast_law`])
//!    — per round, every protocol fan-out must reach all `N−1` peers
//!    exactly once, every `HaveNested` announcer must also send
//!    `NestedCompleted`, and the number of fan-outs must equal the
//!    paper's `P + 2Q + 1` bound (checked at `on_run_end`, when the
//!    round's `P` raisers and `Q` aborters are known).

use crate::event::{ObsEvent, ObsKind, ObsState, Observer};
use caex_action::ActionId;
use caex_net::{NodeId, SimTime};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// One invariant violation, with the offending event's coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Microsecond timestamp of the offending event.
    pub at_us: u64,
    /// The object the violation was observed at.
    pub object: NodeId,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}µs] {}: {}", self.at_us, self.object, self.message)
    }
}

/// The invariant-checking observer. Collects [`Violation`]s; a clean
/// run ends with [`Watchdog::is_clean`] true.
#[derive(Debug)]
pub struct Watchdog {
    expected_commits: u64,
    violations: Vec<Violation>,
    state: HashMap<NodeId, ObsState>,
    participants: HashMap<ActionId, BTreeSet<NodeId>>,
    // (action, round, receiver) -> acks seen so far
    acks_to: HashMap<(ActionId, u32, NodeId), u64>,
    // (action, round, sender) -> ack-expecting broadcasts (exception /
    // nested_completed multicast fan-out, counted per destination and
    // divided by N−1 is fragile; count multicast *starts* instead by
    // first destination of a burst).
    broadcasts: HashMap<(ActionId, u32, NodeId), BroadcastTally>,
    commits: HashMap<(ActionId, u32), u64>,
    open_actions: HashMap<NodeId, u64>,
    open_abortions: HashMap<NodeId, u64>,
    open_handlers: HashMap<NodeId, u64>,
    check_multicast_law: bool,
    // (action, round) -> (sender, kind) -> distinct destinations of
    // that sender's fan-out. Only the four broadcast kinds are tracked.
    fanouts: BTreeMap<(ActionId, u32), BTreeMap<(NodeId, &'static str), BTreeSet<NodeId>>>,
    // (observer, suspected peer) pairs with no rejoin (or confirmation)
    // yet — pairs the two-stage detector's Suspected/Rejoined events.
    open_suspicions: BTreeSet<(NodeId, NodeId)>,
    suspicion_flaps: u64,
}

/// Per-(round, sender) tally of ack-expecting sends, grouped into
/// broadcasts of `N−1` messages each.
#[derive(Debug, Default)]
struct BroadcastTally {
    sends: u64,
}

const LEGAL_EDGES: [(ObsState, ObsState); 9] = [
    (ObsState::N, ObsState::X),
    (ObsState::N, ObsState::S),
    (ObsState::S, ObsState::X),
    (ObsState::S, ObsState::N),
    (ObsState::X, ObsState::S),
    (ObsState::X, ObsState::R),
    (ObsState::X, ObsState::N),
    (ObsState::R, ObsState::N),
    (ObsState::R, ObsState::S),
];

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog::new()
    }
}

impl Watchdog {
    /// Creates a watchdog expecting a single resolver per round.
    #[must_use]
    pub fn new() -> Self {
        Watchdog {
            expected_commits: 1,
            violations: Vec::new(),
            state: HashMap::new(),
            participants: HashMap::new(),
            acks_to: HashMap::new(),
            broadcasts: HashMap::new(),
            commits: HashMap::new(),
            open_actions: HashMap::new(),
            open_abortions: HashMap::new(),
            open_handlers: HashMap::new(),
            check_multicast_law: false,
            fanouts: BTreeMap::new(),
            open_suspicions: BTreeSet::new(),
            suspicion_flaps: 0,
        }
    }

    /// Suspicion flaps observed so far: peers suspected by the accrual
    /// detector and then heard from again (each one a desertion the old
    /// fixed-timeout detector would have declared falsely).
    #[must_use]
    pub fn suspicion_flaps(&self) -> u64 {
        self.suspicion_flaps
    }

    /// Allows up to `count` commits per round (resolver groups).
    #[must_use]
    pub fn with_expected_commits(mut self, count: u64) -> Self {
        self.expected_commits = count.max(1);
        self
    }

    /// Enables the §4.5 multicast-law check: per resolution round,
    /// each fan-out must reach every peer exactly once and the round's
    /// fan-out count must equal `P + 2Q + C` (`P` raisers, `Q`
    /// aborters, `C = expected_commits`) — the paper's "p+2q+1
    /// multicasts" accounting under reliable multicast. Verified in
    /// [`Observer::on_run_end`], once the round is complete. Do not
    /// enable for runs with injected crashes: a deserter legitimately
    /// truncates fan-outs.
    #[must_use]
    pub fn with_multicast_law(mut self) -> Self {
        self.check_multicast_law = true;
        self
    }

    /// The violations recorded so far.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// `true` iff no invariant has been violated.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    fn flag(&mut self, event: &ObsEvent, message: String) {
        self.violations.push(Violation {
            at_us: event.at.as_micros(),
            object: event.object,
            message,
        });
    }
}

impl Observer for Watchdog {
    fn on_event(&mut self, event: &ObsEvent) {
        let object = event.object;
        match &event.kind {
            ObsKind::ActionEnter => {
                self.participants
                    .entry(event.span.action)
                    .or_default()
                    .insert(object);
                *self.open_actions.entry(object).or_insert(0) += 1;
            }
            ObsKind::ActionLeave => {
                let open = self.open_actions.entry(object).or_insert(0);
                if *open == 0 {
                    self.flag(
                        event,
                        format!(
                            "ActionLeave for {} with no open action span",
                            event.span.action
                        ),
                    );
                } else {
                    *open -= 1;
                }
            }
            ObsKind::StateTransition { from, to } => {
                let known = self.state.get(&object).copied().unwrap_or(ObsState::N);
                if known != *from {
                    self.flag(
                        event,
                        format!(
                            "transition {from}\u{2192}{to} but {object} was last \
                             observed in {known}"
                        ),
                    );
                }
                if !LEGAL_EDGES.contains(&(*from, *to)) {
                    self.flag(
                        event,
                        format!("illegal state transition {from}\u{2192}{to}"),
                    );
                }
                self.state.insert(object, *to);
            }
            ObsKind::AbortionStart { .. } => {
                *self.open_abortions.entry(object).or_insert(0) += 1;
            }
            ObsKind::AbortionEnd => {
                let open = self.open_abortions.entry(object).or_insert(0);
                if *open == 0 {
                    self.flag(event, "AbortionEnd with no open abortion".to_owned());
                } else {
                    *open -= 1;
                }
            }
            ObsKind::HandlerStart { .. } => {
                if self.open_abortions.get(&object).copied().unwrap_or(0) > 0 {
                    self.flag(
                        event,
                        format!(
                            "commit delivered to {object} while its abortion is \
                             still in progress (LO incomplete)"
                        ),
                    );
                }
                *self.open_handlers.entry(object).or_insert(0) += 1;
            }
            ObsKind::HandlerEnd { .. } => {
                let open = self.open_handlers.entry(object).or_insert(0);
                if *open == 0 {
                    self.flag(event, "HandlerEnd with no open handler".to_owned());
                } else {
                    *open -= 1;
                }
            }
            ObsKind::ResolutionCommit { .. } => {
                if event.span.round > 0 {
                    let commits = self
                        .commits
                        .entry((event.span.action, event.span.round))
                        .or_insert(0);
                    *commits += 1;
                    if *commits > self.expected_commits {
                        let total = *commits;
                        self.flag(
                            event,
                            format!(
                                "{} committed {total} times (expected at most {})",
                                event.span, self.expected_commits
                            ),
                        );
                    }
                }
            }
            ObsKind::MessageSent { kind, to } => {
                if event.span.round == 0 {
                    return;
                }
                let action = event.span.action;
                let round = event.span.round;
                if self.check_multicast_law
                    && matches!(
                        *kind,
                        "exception" | "have_nested" | "nested_completed" | "commit"
                    )
                {
                    let dests = self
                        .fanouts
                        .entry((action, round))
                        .or_default()
                        .entry((object, *kind))
                        .or_default();
                    if !dests.insert(*to) {
                        let span = event.span;
                        self.flag(
                            event,
                            format!("{object} multicast {kind} to {to} twice in {span}"),
                        );
                    }
                }
                // Broadcasts that expect an ACK per peer.
                if matches!(*kind, "exception" | "nested_completed") {
                    self.broadcasts
                        .entry((action, round, object))
                        .or_default()
                        .sends += 1;
                }
                if *kind == "ack" {
                    let n = self
                        .participants
                        .get(&action)
                        .map_or(0, |set| set.len() as u64);
                    let peers = n.saturating_sub(1);
                    let received = self
                        .acks_to
                        .entry((action, round, *to))
                        .or_insert(0);
                    *received += 1;
                    let broadcasts = self
                        .broadcasts
                        .get(&(action, round, *to))
                        .map_or(0, |b| {
                            if peers == 0 {
                                0
                            } else {
                                b.sends.div_ceil(peers)
                            }
                        });
                    let allowed = peers * broadcasts.max(1);
                    if peers > 0 && *received > allowed {
                        let received = *received;
                        self.flag(
                            event,
                            format!(
                                "{to} has been sent {received} ACKs in {} but made \
                                 {broadcasts} broadcast(s) of N\u{2212}1 = {peers}: \
                                 at most {allowed} are legal",
                                event.span
                            ),
                        );
                    }
                }
            }
            ObsKind::PeerSuspected { peer } => {
                self.open_suspicions.insert((object, *peer));
            }
            ObsKind::PeerRejoined { peer } => {
                // A rejoin must answer an open suspicion at the same
                // observer: an unpaired one means the two-stage
                // detector skipped its Suspected level.
                if !self.open_suspicions.remove(&(object, *peer)) {
                    self.flag(
                        event,
                        format!("{object} saw {peer} rejoin without suspecting it first"),
                    );
                }
                self.suspicion_flaps += 1;
            }
            // Receives carry no protocol obligations of their own; the
            // matching-send invariant is causal analysis' job. The
            // failover events are informational here — crash runs must
            // not enable the multicast law in the first place (a
            // deserter legitimately truncates fan-outs).
            ObsKind::Raise { .. }
            | ObsKind::ResolutionStart
            | ObsKind::ResolverElected { .. }
            | ObsKind::MessageReceived { .. }
            | ObsKind::ActionFailed { .. }
            | ObsKind::ResolverSuspected { .. }
            | ObsKind::ResolverReelected { .. } => {}
        }
    }

    fn on_run_end(&mut self, at: SimTime) {
        if !self.check_multicast_law {
            return;
        }
        let at_us = at.as_micros();
        let mut end_violations = Vec::new();
        for ((action, round), bursts) in &self.fanouts {
            let span = format!("{action}#r{round}");
            let peers = self
                .participants
                .get(action)
                .map_or(0, |set| set.len().saturating_sub(1));
            // Every fan-out must be a full multicast: N−1 distinct
            // destinations.
            for ((sender, kind), dests) in bursts {
                if dests.len() != peers {
                    end_violations.push(Violation {
                        at_us,
                        object: *sender,
                        message: format!(
                            "{span}: {sender}'s {kind} fan-out reached {} of N\u{2212}1 = \
                             {peers} peers",
                            dests.len()
                        ),
                    });
                }
            }
            // Every announced abortion must complete.
            let senders_of = |kind: &str| -> BTreeSet<NodeId> {
                bursts
                    .keys()
                    .filter(|(_, k)| *k == kind)
                    .map(|(s, _)| *s)
                    .collect()
            };
            let raisers = senders_of("exception");
            let have_nested = senders_of("have_nested");
            let completed = senders_of("nested_completed");
            let committers = senders_of("commit");
            if have_nested != completed {
                end_violations.push(Violation {
                    at_us,
                    object: NodeId::new(0),
                    message: format!(
                        "{span}: HaveNested announcers {have_nested:?} \u{2260} \
                         NestedCompleted senders {completed:?}"
                    ),
                });
            }
            // The §4.5 count: P + 2Q + C multicasts per round.
            let (p, q, c) = (raisers.len(), have_nested.len(), committers.len());
            let expected =
                p + 2 * q + usize::try_from(self.expected_commits).unwrap_or(usize::MAX);
            let actual = bursts.len();
            if actual != expected || c as u64 != self.expected_commits {
                end_violations.push(Violation {
                    at_us,
                    object: NodeId::new(0),
                    message: format!(
                        "{span}: {actual} multicasts with P = {p} raisers, Q = {q} \
                         aborters, {c} commit(s); \u{00a7}4.5 predicts P+2Q+{} = {expected}",
                        self.expected_commits
                    ),
                });
            }
        }
        self.violations.extend(end_violations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CorrelationId;
    use caex_net::SimTime;
    use caex_tree::ExceptionId;

    fn ev(object: u32, round: u32, kind: ObsKind) -> ObsEvent {
        ObsEvent {
            at: SimTime::from_micros(1),
            wall_micros: None,
            object: NodeId::new(object),
            span: CorrelationId { action: ActionId::new(0), round },
            kind,
        }
    }

    #[test]
    fn clean_stream_stays_clean() {
        let mut dog = Watchdog::new();
        dog.on_event(&ev(0, 0, ObsKind::ActionEnter));
        dog.on_event(&ev(1, 0, ObsKind::ActionEnter));
        dog.on_event(&ev(
            0,
            1,
            ObsKind::StateTransition { from: ObsState::N, to: ObsState::X },
        ));
        dog.on_event(&ev(
            0,
            1,
            ObsKind::MessageSent { kind: "exception", to: NodeId::new(1) },
        ));
        dog.on_event(&ev(
            1,
            1,
            ObsKind::MessageSent { kind: "ack", to: NodeId::new(0) },
        ));
        dog.on_event(&ev(
            0,
            1,
            ObsKind::ResolutionCommit { resolved: ExceptionId::new(1), raised: 1 },
        ));
        dog.on_event(&ev(
            0,
            1,
            ObsKind::StateTransition { from: ObsState::X, to: ObsState::N },
        ));
        assert!(dog.is_clean(), "{:?}", dog.violations());
    }

    #[test]
    fn illegal_edge_is_flagged() {
        let mut dog = Watchdog::new();
        dog.on_event(&ev(
            0,
            1,
            ObsKind::StateTransition { from: ObsState::N, to: ObsState::X },
        ));
        dog.on_event(&ev(
            0,
            1,
            ObsKind::StateTransition { from: ObsState::X, to: ObsState::R },
        ));
        dog.on_event(&ev(
            0,
            1,
            ObsKind::StateTransition { from: ObsState::R, to: ObsState::X },
        ));
        assert_eq!(dog.violations().len(), 1);
        assert!(dog.violations()[0].message.contains("illegal state transition"));
    }

    #[test]
    fn stale_from_state_is_flagged() {
        let mut dog = Watchdog::new();
        dog.on_event(&ev(
            0,
            1,
            ObsKind::StateTransition { from: ObsState::S, to: ObsState::X },
        ));
        assert_eq!(dog.violations().len(), 1);
        assert!(dog.violations()[0].message.contains("last observed in N"));
    }

    #[test]
    fn ack_overflow_is_flagged() {
        let mut dog = Watchdog::new();
        for o in 0..3 {
            dog.on_event(&ev(o, 0, ObsKind::ActionEnter));
        }
        // O0 broadcasts one exception (2 sends)...
        for to in 1..3 {
            dog.on_event(&ev(
                0,
                1,
                ObsKind::MessageSent { kind: "exception", to: NodeId::new(to) },
            ));
        }
        // ...so two ACKs are fine, a third is an overflow.
        for _ in 0..2 {
            dog.on_event(&ev(
                1,
                1,
                ObsKind::MessageSent { kind: "ack", to: NodeId::new(0) },
            ));
        }
        assert!(dog.is_clean());
        dog.on_event(&ev(
            2,
            1,
            ObsKind::MessageSent { kind: "ack", to: NodeId::new(0) },
        ));
        assert_eq!(dog.violations().len(), 1);
        assert!(dog.violations()[0].message.contains("ACKs"));
    }

    #[test]
    fn commit_during_abortion_is_flagged() {
        let mut dog = Watchdog::new();
        dog.on_event(&ev(0, 1, ObsKind::AbortionStart { depth: 1 }));
        dog.on_event(&ev(
            0,
            1,
            ObsKind::HandlerStart { exception: ExceptionId::new(1) },
        ));
        assert_eq!(dog.violations().len(), 1);
        assert!(dog.violations()[0].message.contains("abortion"));
    }

    #[test]
    fn duplicate_commit_respects_expected_group() {
        let commit = ObsKind::ResolutionCommit {
            resolved: ExceptionId::new(1),
            raised: 1,
        };
        let mut dog = Watchdog::new();
        dog.on_event(&ev(0, 1, commit.clone()));
        dog.on_event(&ev(1, 1, commit.clone()));
        assert_eq!(dog.violations().len(), 1);

        let mut group = Watchdog::new().with_expected_commits(2);
        group.on_event(&ev(0, 1, commit.clone()));
        group.on_event(&ev(1, 1, commit));
        assert!(group.is_clean());
    }

    fn multicast(from: u32, kind: &'static str, to: u32) -> ObsEvent {
        ev(from, 1, ObsKind::MessageSent { kind, to: NodeId::new(to) })
    }

    /// A complete Example-1-shaped round over 3 objects: O0 raises,
    /// O1 aborts a nested action, O0 resolves. P=1, Q=1 → 4 multicasts.
    fn feed_clean_round(dog: &mut Watchdog, skip: Option<(&'static str, u32, u32)>) {
        for o in 0..3 {
            dog.on_event(&ev(o, 0, ObsKind::ActionEnter));
        }
        let bursts: [(&'static str, u32); 4] = [
            ("exception", 0),
            ("have_nested", 1),
            ("nested_completed", 1),
            ("commit", 0),
        ];
        for (kind, from) in bursts {
            for to in (0..3).filter(|&t| t != from) {
                if skip == Some((kind, from, to)) {
                    continue;
                }
                dog.on_event(&multicast(from, kind, to));
            }
        }
    }

    #[test]
    fn multicast_law_accepts_a_complete_round() {
        let mut dog = Watchdog::new().with_multicast_law();
        feed_clean_round(&mut dog, None);
        dog.on_run_end(SimTime::from_micros(99));
        assert!(dog.is_clean(), "{:?}", dog.violations());
    }

    #[test]
    fn multicast_law_flags_a_truncated_fanout() {
        let mut dog = Watchdog::new().with_multicast_law();
        feed_clean_round(&mut dog, Some(("commit", 0, 2)));
        dog.on_run_end(SimTime::from_micros(99));
        assert_eq!(dog.violations().len(), 1, "{:?}", dog.violations());
        assert!(dog.violations()[0]
            .message
            .contains("commit fan-out reached 1 of N\u{2212}1 = 2"));
    }

    #[test]
    fn multicast_law_flags_a_missing_nested_completed() {
        let mut dog = Watchdog::new().with_multicast_law();
        for o in 0..3 {
            dog.on_event(&ev(o, 0, ObsKind::ActionEnter));
        }
        // O1 announces HaveNested but never reports completion.
        for to in [1, 2] {
            dog.on_event(&multicast(0, "exception", to));
        }
        for to in [0, 2] {
            dog.on_event(&multicast(1, "have_nested", to));
        }
        for to in [1, 2] {
            dog.on_event(&multicast(0, "commit", to));
        }
        dog.on_run_end(SimTime::from_micros(99));
        let messages: Vec<&str> = dog.violations().iter().map(|v| v.message.as_str()).collect();
        assert!(
            messages.iter().any(|m| m.contains("NestedCompleted")),
            "{messages:?}"
        );
        assert!(
            messages.iter().any(|m| m.contains("\u{00a7}4.5 predicts")),
            "{messages:?}"
        );
    }

    #[test]
    fn multicast_law_flags_duplicate_destination() {
        let mut dog = Watchdog::new().with_multicast_law();
        for o in 0..2 {
            dog.on_event(&ev(o, 0, ObsKind::ActionEnter));
        }
        dog.on_event(&multicast(0, "exception", 1));
        dog.on_event(&multicast(0, "exception", 1));
        assert_eq!(dog.violations().len(), 1);
        assert!(dog.violations()[0].message.contains("twice"));
    }

    #[test]
    fn multicast_law_is_off_by_default() {
        let mut dog = Watchdog::new();
        // A blatantly truncated fan-out, but the law is not enabled.
        for o in 0..3 {
            dog.on_event(&ev(o, 0, ObsKind::ActionEnter));
        }
        dog.on_event(&multicast(0, "exception", 1));
        dog.on_run_end(SimTime::from_micros(99));
        assert!(dog.is_clean());
    }

    #[test]
    fn unbalanced_spans_are_flagged() {
        let mut dog = Watchdog::new();
        dog.on_event(&ev(0, 0, ObsKind::ActionLeave));
        dog.on_event(&ev(0, 0, ObsKind::AbortionEnd));
        dog.on_event(&ev(0, 0, ObsKind::HandlerEnd { signalled: false }));
        assert_eq!(dog.violations().len(), 3);
    }
}
