//! `caex-obs`: the observability layer for the caex workspace.
//!
//! The protocol crates emit a typed stream of [`ObsEvent`]s — action
//! enter/leave, raises, §4.2 `N`/`X`/`S`/`R` state transitions,
//! resolver election, resolution round start/commit, abortion and
//! handler spans — through the [`Observer`] trait. Every event carries
//! a [`CorrelationId`] tying it to its `(ActionId, resolution round)`
//! so one resolution can be followed end-to-end across participants.
//!
//! On top of the raw stream this crate ships:
//!
//! - [`MetricsRegistry`] — counters and fixed-bucket histograms for
//!   resolution latency (sim and wall time), per-round message counts
//!   checked against an injected §4.4 predictor, per-state dwell times
//!   and handler durations, with Prometheus-style text exposition and
//!   a JSON-round-trippable snapshot;
//! - [`JsonlExporter`] and [`ChromeTraceExporter`] — structured-log and
//!   Chrome trace-event output (`B`/`E` span pairs, one track per
//!   participant) loadable in Perfetto;
//! - [`TcpExporter`] / [`EventCollector`] — the same JSONL streamed
//!   over a real TCP socket to a collector, which rebuilds typed
//!   events and replays them into a local observer stack (how
//!   `caex-wire`'s coordinator watches a multi-process run);
//! - [`Watchdog`] — an invariant observer that flags state-machine
//!   violations (illegal `N`/`X`/`S`/`R` edges, commits landing during
//!   an abortion, ACK overflow beyond `N−1` per broadcast, unbalanced
//!   spans, duplicate commits) as the events stream past;
//! - [`causal`] — happens-before DAG construction over any recorded
//!   stream (program order + FIFO-matched send→receive edges),
//!   critical-path extraction with per-phase latency attribution that
//!   sums exactly to end-to-end latency, percentile summaries, and
//!   clock-skew stitching of multi-process streams;
//! - [`FlameBuilder`] — folded-stack flame graphs (`O1;A1;handle e2
//!   42`) of per-object dwell, keyed by resolution round, consumable
//!   by `flamegraph.pl`/speedscope unchanged.
//!
//! The layer is additive: engines keep their `TraceLog` and report
//! structs untouched and gain `run_observed` variants that thread an
//! `&mut dyn Observer` through the same code path.

pub mod causal;
pub mod event;
pub mod exporters;
pub mod flame;
pub mod json;
pub mod metrics;
pub mod stream;
pub mod watchdog;

pub use causal::{CausalGraph, CriticalPath, LatencySummary, PathSegment, Phase};
pub use event::{CorrelationId, ObsEvent, ObsKind, ObsState, Observer, Recorder, Tee};
pub use exporters::{ChromeTraceExporter, JsonlExporter};
pub use flame::FlameBuilder;
pub use stream::{EventCollector, TcpExporter};
pub use json::JsonValue;
pub use metrics::{Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, ResolutionMetrics};
pub use watchdog::{Violation, Watchdog};
