//! The typed event stream: [`ObsEvent`], its [`ObsKind`] taxonomy, the
//! [`Observer`] trait and small composition helpers.
//!
//! Events are emitted by the engines in delivery order, so per-object
//! subsequences are non-decreasing in time; exporters and the metrics
//! registry rely on that.

use caex_action::ActionId;
use caex_net::{NodeId, SimTime};
use caex_tree::ExceptionId;
use std::fmt;

/// The §4.2 participant states as observed from outside.
///
/// `N` is the normal state (no active resolution context); `X` is
/// exceptional, `S` suspended, `R` ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObsState {
    /// Normal: no resolution context for the object.
    N,
    /// Exceptional: the object raised or adopted an exception.
    X,
    /// Suspended: informed of an exception, waiting for resolution.
    S,
    /// Ready: acknowledged everything, waiting for the commit.
    R,
}

impl fmt::Display for ObsState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObsState::N => "N",
            ObsState::X => "X",
            ObsState::S => "S",
            ObsState::R => "R",
        };
        f.write_str(s)
    }
}

impl ObsState {
    /// Parses the single-letter form produced by `Display`.
    #[must_use]
    pub fn parse(s: &str) -> Option<ObsState> {
        match s {
            "N" => Some(ObsState::N),
            "X" => Some(ObsState::X),
            "S" => Some(ObsState::S),
            "R" => Some(ObsState::R),
            _ => None,
        }
    }
}

/// The correlation id carried by every event: the action a span
/// belongs to plus the resolution round within that action.
///
/// Round `0` means "no resolution active" (setup traffic such as
/// action entry). The first raise in an action opens round `1`; every
/// later raise after a commit opens the next round. All events of one
/// resolution — raises, protocol messages, abortions, the commit and
/// the post-commit handlers — share the same `(action, round)` pair
/// across every participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CorrelationId {
    /// The action this event belongs to.
    pub action: ActionId,
    /// The resolution round within `action` (0 = outside resolution).
    pub round: u32,
}

impl fmt::Display for CorrelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#r{}", self.action, self.round)
    }
}

/// What happened. Variants map one-to-one onto the paper's protocol:
/// see `DESIGN.md` for the full taxonomy-to-paper mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsKind {
    /// The object entered the action (opens a span on its track).
    ActionEnter,
    /// The object left the action — by commit, completion or abortion
    /// (closes the matching `ActionEnter` span).
    ActionLeave,
    /// The object raised (or adopted via an abortion signal) an
    /// exception in the action.
    Raise {
        /// The raised exception class.
        exception: ExceptionId,
    },
    /// The object's §4.2 state changed.
    StateTransition {
        /// State before the transition.
        from: ObsState,
        /// State after the transition.
        to: ObsState,
    },
    /// A resolution round opened (first raise of the round).
    ResolutionStart,
    /// The round elected its resolver (the highest-numbered raiser).
    ResolverElected {
        /// The elected resolver.
        resolver: NodeId,
    },
    /// The resolver committed the round.
    ResolutionCommit {
        /// The resolved (covering) exception.
        resolved: ExceptionId,
        /// How many concurrent exceptions the round resolved.
        raised: u32,
    },
    /// The object started aborting its nested actions (opens a span).
    AbortionStart {
        /// How many nested actions the abortion unwinds.
        depth: u32,
    },
    /// The object finished aborting (closes the abortion span).
    AbortionEnd,
    /// The object started its handler for the resolved exception
    /// (opens a span).
    HandlerStart {
        /// The exception being handled.
        exception: ExceptionId,
    },
    /// The handler finished (closes the handler span).
    HandlerEnd {
        /// `true` if the handler signalled a failure exception to the
        /// enclosing context instead of recovering.
        signalled: bool,
    },
    /// The object sent a protocol message.
    MessageSent {
        /// The wire kind (`"exception"`, `"ack"`, `"commit"`, …).
        kind: &'static str,
        /// The destination object.
        to: NodeId,
    },
    /// The object received (and is about to process) a protocol
    /// message. Paired with the sender's [`ObsKind::MessageSent`] by
    /// causal analysis: the k-th receive of a `(from, to, kind)`
    /// triple matches the k-th send, which is exact under the §4.2
    /// FIFO-channel assumption.
    MessageReceived {
        /// The wire kind (`"exception"`, `"ack"`, `"commit"`, …).
        kind: &'static str,
        /// The sending object.
        from: NodeId,
    },
    /// The action failed at this object (failure signalled out of the
    /// outermost context).
    ActionFailed {
        /// The failure exception.
        exception: ExceptionId,
    },
    /// The failure detector reported the round's elected resolver dead
    /// at this object: its raised exceptions become ghost entries and
    /// a surviving raiser will re-run the election.
    ResolverSuspected {
        /// The suspected (dead) resolver.
        resolver: NodeId,
    },
    /// A surviving raiser won the re-run election and resolves in the
    /// dead resolver's place.
    ResolverReelected {
        /// The newly elected resolver.
        resolver: NodeId,
        /// The dead resolver it replaces.
        replaced: NodeId,
    },
    /// The accrual failure detector suspects `peer` (silence past the
    /// suspicion threshold φ) without confirming its death — the
    /// two-stage detector's warning level. Feeds the watchdog's flap
    /// accounting; no protocol obligation changes.
    PeerSuspected {
        /// The suspected peer.
        peer: NodeId,
    },
    /// A previously suspected `peer` was heard from again (suspicion
    /// flap / reconnect after a healed partition).
    PeerRejoined {
        /// The returning peer.
        peer: NodeId,
    },
}

impl ObsKind {
    /// A stable lowercase label for the kind (counter keys, JSON).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ObsKind::ActionEnter => "action_enter",
            ObsKind::ActionLeave => "action_leave",
            ObsKind::Raise { .. } => "raise",
            ObsKind::StateTransition { .. } => "state_transition",
            ObsKind::ResolutionStart => "resolution_start",
            ObsKind::ResolverElected { .. } => "resolver_elected",
            ObsKind::ResolutionCommit { .. } => "resolution_commit",
            ObsKind::AbortionStart { .. } => "abortion_start",
            ObsKind::AbortionEnd => "abortion_end",
            ObsKind::HandlerStart { .. } => "handler_start",
            ObsKind::HandlerEnd { .. } => "handler_end",
            ObsKind::MessageSent { .. } => "message_sent",
            ObsKind::MessageReceived { .. } => "message_received",
            ObsKind::ActionFailed { .. } => "action_failed",
            ObsKind::ResolverSuspected { .. } => "resolver_suspected",
            ObsKind::ResolverReelected { .. } => "resolver_reelected",
            ObsKind::PeerSuspected { .. } => "peer_suspected",
            ObsKind::PeerRejoined { .. } => "peer_rejoined",
        }
    }
}

/// One observability event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEvent {
    /// Simulated (or simulated-from-wall) timestamp of the event.
    pub at: SimTime,
    /// Wall-clock microseconds since run start, when the engine has a
    /// real clock (the thread engine); `None` for pure simulations.
    pub wall_micros: Option<u64>,
    /// The participant the event happened at.
    pub object: NodeId,
    /// The `(action, round)` correlation id.
    pub span: CorrelationId,
    /// What happened.
    pub kind: ObsKind,
}

/// The observer interface engines emit into.
///
/// Implementations must tolerate events from several actions and
/// rounds interleaving; the [`CorrelationId`] is the demultiplexer.
pub trait Observer {
    /// Called once per event, in engine delivery order.
    fn on_event(&mut self, event: &ObsEvent);

    /// Called once when the run ends, with the final timestamp; lets
    /// stateful observers close dwell intervals and open spans.
    fn on_run_end(&mut self, at: SimTime) {
        let _ = at;
    }
}

/// The null observer: every event is dropped. `run()` delegates to
/// `run_observed(…, &mut ())` so un-instrumented runs pay only a
/// virtual call per event.
impl Observer for () {
    fn on_event(&mut self, _event: &ObsEvent) {}
}

/// An observer that records every event for later export or assertion.
#[derive(Debug, Default)]
pub struct Recorder {
    /// The recorded events, in arrival order.
    pub events: Vec<ObsEvent>,
    /// The end-of-run timestamp, once `on_run_end` has fired.
    pub finished_at: Option<SimTime>,
}

impl Recorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for Recorder {
    fn on_event(&mut self, event: &ObsEvent) {
        self.events.push(event.clone());
    }

    fn on_run_end(&mut self, at: SimTime) {
        self.finished_at = Some(at);
    }
}

/// Fans one event stream out to several observers, so a run can feed
/// the metrics registry, an exporter and the watchdog at once.
#[derive(Default)]
pub struct Tee<'a> {
    observers: Vec<&'a mut dyn Observer>,
}

impl<'a> Tee<'a> {
    /// Creates an empty tee.
    #[must_use]
    pub fn new() -> Self {
        Self { observers: Vec::new() }
    }

    /// Adds an observer to the fan-out (builder form).
    #[must_use]
    pub fn with(mut self, observer: &'a mut dyn Observer) -> Self {
        self.observers.push(observer);
        self
    }

    /// Adds an observer to the fan-out.
    pub fn push(&mut self, observer: &'a mut dyn Observer) {
        self.observers.push(observer);
    }
}

impl fmt::Debug for Tee<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tee")
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl Observer for Tee<'_> {
    fn on_event(&mut self, event: &ObsEvent) {
        for obs in &mut self.observers {
            obs.on_event(event);
        }
    }

    fn on_run_end(&mut self, at: SimTime) {
        for obs in &mut self.observers {
            obs.on_run_end(at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: ObsKind) -> ObsEvent {
        ObsEvent {
            at: SimTime::from_micros(7),
            wall_micros: None,
            object: NodeId::new(1),
            span: CorrelationId { action: ActionId::new(0), round: 1 },
            kind,
        }
    }

    #[test]
    fn correlation_id_display() {
        let id = CorrelationId { action: ActionId::new(2), round: 3 };
        assert_eq!(id.to_string(), "A2#r3");
    }

    #[test]
    fn state_round_trips_through_display() {
        for s in [ObsState::N, ObsState::X, ObsState::S, ObsState::R] {
            assert_eq!(ObsState::parse(&s.to_string()), Some(s));
        }
        assert_eq!(ObsState::parse("Q"), None);
    }

    #[test]
    fn recorder_records_and_tee_fans_out() {
        let mut a = Recorder::new();
        let mut b = Recorder::new();
        {
            let mut tee = Tee::new().with(&mut a).with(&mut b);
            tee.on_event(&ev(ObsKind::ActionEnter));
            tee.on_event(&ev(ObsKind::ActionLeave));
            tee.on_run_end(SimTime::from_micros(9));
        }
        assert_eq!(a.events.len(), 2);
        assert_eq!(b.events.len(), 2);
        assert_eq!(a.finished_at, Some(SimTime::from_micros(9)));
        assert_eq!(a.events[0].kind.label(), "action_enter");
    }
}
