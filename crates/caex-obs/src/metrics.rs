//! [`MetricsRegistry`]: counters and fixed-bucket histograms derived
//! live from the event stream, a §4.4 law check, Prometheus-style text
//! exposition and a JSON-round-trippable snapshot.

use crate::event::{CorrelationId, ObsEvent, ObsKind, ObsState, Observer};
use crate::json::{self, JsonValue};
use caex_action::ActionId;
use caex_net::{NodeId, SimTime};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;

/// Default microsecond bucket bounds shared by every histogram: powers
/// of ten from 1µs to 10s, plus the implicit `+Inf` bucket.
pub const DEFAULT_US_BOUNDS: [u64; 8] =
    [1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Message kinds counted against the §4.4 bound. `leave_ready` is
/// leave coordination, which the paper's count does not include.
const LAW_KINDS: [&str; 5] =
    ["exception", "ack", "have_nested", "nested_completed", "commit"];

/// A fixed-bucket histogram over `u64` samples (microseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>, // bounds.len() + 1: last bucket is +Inf
    sum: u64,
    count: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(&DEFAULT_US_BOUNDS)
    }
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds
    /// (must be sorted ascending); an `+Inf` bucket is added.
    #[must_use]
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            count: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, or 0 with no samples.
    #[must_use]
    pub fn mean(&self) -> u64 {
        if self.count == 0 { 0 } else { self.sum / self.count }
    }

    /// Largest sample seen, or 0 with no samples.
    #[must_use]
    pub fn max(&self) -> u64 {
        if self.count == 0 { 0 } else { self.max }
    }

    /// Smallest sample seen, or 0 with no samples.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 { 0 } else { self.min }
    }

    /// `(upper_bound, cumulative_count)` pairs in Prometheus `le`
    /// convention, ending with the `+Inf` bucket (`u64::MAX`).
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.counts.len());
        let mut running = 0;
        for (i, &count) in self.counts.iter().enumerate() {
            running += count;
            let bound = self.bounds.get(i).copied().unwrap_or(u64::MAX);
            out.push((bound, running));
        }
        out
    }

    /// Nearest-rank percentile estimate for `q` in `(0, 1]`: the
    /// inclusive upper bound of the bucket holding the `q`-th sample,
    /// clamped to the exact maximum (so the `+Inf` bucket reports
    /// `max`, not infinity). Returns 0 with no samples.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut running = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            running += c;
            if running >= rank {
                return self.bounds.get(i).copied().unwrap_or(self.max).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate (see [`Histogram::percentile`]).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 99th-percentile estimate (see [`Histogram::percentile`]).
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th-percentile estimate (see [`Histogram::percentile`]).
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// A plain-data copy for snapshots.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
            sum: self.sum,
            count: self.count,
            p50: self.p50(),
            p99: self.p99(),
            p999: self.p999(),
        }
    }
}

/// Plain-data form of a [`Histogram`] for snapshots.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds (ascending).
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one longer than `bounds` (`+Inf` last).
    pub counts: Vec<u64>,
    /// Sum of all samples.
    pub sum: u64,
    /// Number of samples.
    pub count: u64,
    /// Median estimate at snapshot time (see [`Histogram::percentile`]).
    pub p50: u64,
    /// 99th-percentile estimate at snapshot time.
    pub p99: u64,
    /// 99.9th-percentile estimate at snapshot time.
    pub p999: u64,
}

/// Per-resolution-round metrics, finalized at end of run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ResolutionMetrics {
    /// The action the round ran in.
    pub action: ActionId,
    /// The round number (1-based).
    pub round: u32,
    /// Sim-time latency from first raise to commit, in µs.
    pub latency_us: u64,
    /// Wall-clock latency, when the engine had a real clock.
    pub wall_latency_us: Option<u64>,
    /// Protocol messages attributed to the round (law kinds only —
    /// excludes leave coordination).
    pub messages: u64,
    /// Per-kind message counts for the round (all kinds).
    pub by_kind: Vec<(String, u64)>,
    /// Participants of the action (`N`).
    pub n: u64,
    /// Distinct concurrently raised exceptions (`P`).
    pub p: u64,
    /// Participants that aborted nested actions (`Q`).
    pub q: u64,
    /// The §4.4 prediction, when a law was injected and applicable.
    pub predicted: Option<u64>,
    /// `Some(true)` iff `messages == predicted`.
    pub law_holds: Option<bool>,
    /// The exception the round resolved to, as `e<idx>`.
    pub resolved: Option<String>,
}

/// Book-keeping for one open or committed round.
#[derive(Debug, Default)]
struct RoundStats {
    started_at: Option<SimTime>,
    wall_started: Option<u64>,
    committed_at: Option<SimTime>,
    wall_committed: Option<u64>,
    by_kind: BTreeMap<String, u64>,
    raised: BTreeSet<u32>,
    aborters: BTreeSet<NodeId>,
    resolved: Option<String>,
}

/// The metrics observer: counters, histograms, per-round accounting
/// and the §4.4 law check.
///
/// Attach to a run via `run_observed`, then read [`Self::prometheus`]
/// or [`Self::snapshot`]. `on_run_end` (called by the engines) closes
/// dwell intervals and finalizes the per-round records; both outputs
/// call it implicitly through the finalized data only if the engine
/// did.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    law: Option<fn(u64, u64, u64) -> u64>,
    events_total: BTreeMap<String, u64>,
    messages_total: BTreeMap<String, u64>,
    rounds: HashMap<(ActionId, u32), RoundStats>,
    participants: HashMap<ActionId, BTreeSet<NodeId>>,
    state_since: HashMap<NodeId, (ObsState, SimTime)>,
    dwell_us: BTreeMap<String, u64>,
    handler_open: HashMap<NodeId, (SimTime, Option<u64>)>,
    handler_durations: Histogram,
    resolution_latency: Histogram,
    resolution_latency_wall: Histogram,
    resolutions: Vec<ResolutionMetrics>,
    finished: bool,
}

impl MetricsRegistry {
    /// Creates a registry with no §4.4 law attached.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches the §4.4 predictor `f(n, p, q) -> messages`; callers
    /// pass `caex::analysis::messages_general` so the check literally
    /// uses the analysis module's closed form.
    #[must_use]
    pub fn with_law(mut self, law: fn(u64, u64, u64) -> u64) -> Self {
        self.law = Some(law);
        self
    }

    /// Total events seen per kind label.
    #[must_use]
    pub fn events_total(&self) -> &BTreeMap<String, u64> {
        &self.events_total
    }

    /// Total messages sent per wire kind.
    #[must_use]
    pub fn messages_total(&self) -> &BTreeMap<String, u64> {
        &self.messages_total
    }

    /// Finalized per-round metrics (populated by `on_run_end`).
    #[must_use]
    pub fn resolutions(&self) -> &[ResolutionMetrics] {
        &self.resolutions
    }

    /// Per-state dwell time in µs, summed over all objects.
    #[must_use]
    pub fn state_dwell_us(&self) -> &BTreeMap<String, u64> {
        &self.dwell_us
    }

    /// The resolution-latency histogram (sim time, µs).
    #[must_use]
    pub fn resolution_latency(&self) -> &Histogram {
        &self.resolution_latency
    }

    /// The handler-duration histogram (sim time, µs).
    #[must_use]
    pub fn handler_durations(&self) -> &Histogram {
        &self.handler_durations
    }

    /// `true` iff every committed round with an applicable law matched
    /// its §4.4 prediction exactly. Rounds without a law (or with
    /// `p = 0` / `p + q > n`, outside the closed form's domain) don't
    /// count against it.
    #[must_use]
    pub fn law_holds(&self) -> bool {
        self.resolutions.iter().all(|r| r.law_holds != Some(false))
    }

    fn round_mut(&mut self, span: CorrelationId) -> &mut RoundStats {
        self.rounds.entry((span.action, span.round)).or_default()
    }

    fn touch_state(&mut self, object: NodeId, at: SimTime) {
        self.state_since.entry(object).or_insert((ObsState::N, at));
    }

    /// Renders the Prometheus text exposition format. Label values are
    /// escaped per the exposition-format rules (`\` → `\\`, `"` →
    /// `\"`, newline → `\n`).
    #[must_use]
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE caex_events_total counter\n");
        for (kind, count) in &self.events_total {
            let kind = escape_label_value(kind);
            let _ = writeln!(out, "caex_events_total{{kind=\"{kind}\"}} {count}");
        }
        out.push_str("# TYPE caex_messages_total counter\n");
        for (kind, count) in &self.messages_total {
            let kind = escape_label_value(kind);
            let _ = writeln!(out, "caex_messages_total{{kind=\"{kind}\"}} {count}");
        }
        out.push_str("# TYPE caex_state_dwell_us counter\n");
        for (state, us) in &self.dwell_us {
            let state = escape_label_value(state);
            let _ = writeln!(out, "caex_state_dwell_us{{state=\"{state}\"}} {us}");
        }
        for (name, hist) in [
            ("caex_resolution_latency_us", &self.resolution_latency),
            ("caex_resolution_latency_wall_us", &self.resolution_latency_wall),
            ("caex_handler_duration_us", &self.handler_durations),
        ] {
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (bound, cumulative) in hist.cumulative_buckets() {
                if bound == u64::MAX {
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                } else {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
            }
            let _ = writeln!(out, "{name}_sum {}", hist.sum());
            let _ = writeln!(out, "{name}_count {}", hist.count());
        }
        out.push_str("# TYPE caex_resolution_messages gauge\n");
        for r in &self.resolutions {
            let _ = writeln!(
                out,
                "caex_resolution_messages{{action=\"{}\",round=\"{}\"}} {}",
                escape_label_value(&r.action.to_string()),
                r.round,
                r.messages
            );
        }
        out
    }

    /// A plain-data snapshot of every metric, for serialization.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            events_total: self
                .events_total
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            messages_total: self
                .messages_total
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            state_dwell_us: self.dwell_us.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            resolutions: self.resolutions.clone(),
            resolution_latency: self.resolution_latency.snapshot(),
            resolution_latency_wall: self.resolution_latency_wall.snapshot(),
            handler_durations: self.handler_durations.snapshot(),
        }
    }
}

impl Observer for MetricsRegistry {
    fn on_event(&mut self, event: &ObsEvent) {
        *self
            .events_total
            .entry(event.kind.label().to_owned())
            .or_insert(0) += 1;
        self.touch_state(event.object, event.at);

        match &event.kind {
            ObsKind::ActionEnter => {
                self.participants
                    .entry(event.span.action)
                    .or_default()
                    .insert(event.object);
            }
            ObsKind::StateTransition { from, to } => {
                let now = event.at;
                if let Some((state, since)) = self.state_since.get_mut(&event.object) {
                    debug_assert_eq!(state, from);
                    let dwell = now.as_micros().saturating_sub(since.as_micros());
                    *self.dwell_us.entry(from.to_string()).or_insert(0) += dwell;
                    *state = *to;
                    *since = now;
                }
            }
            ObsKind::Raise { exception } => {
                if event.span.round > 0 {
                    let at = event.at;
                    let wall = event.wall_micros;
                    let idx = exception.index();
                    let round = self.round_mut(event.span);
                    round.started_at.get_or_insert(at);
                    if round.wall_started.is_none() {
                        round.wall_started = wall;
                    }
                    round.raised.insert(idx);
                }
            }
            ObsKind::ResolutionStart => {
                let at = event.at;
                let wall = event.wall_micros;
                let round = self.round_mut(event.span);
                round.started_at.get_or_insert(at);
                if round.wall_started.is_none() {
                    round.wall_started = wall;
                }
            }
            ObsKind::AbortionStart { .. } => {
                let object = event.object;
                if event.span.round > 0 {
                    self.round_mut(event.span).aborters.insert(object);
                }
            }
            ObsKind::MessageSent { kind, .. } => {
                *self.messages_total.entry((*kind).to_owned()).or_insert(0) += 1;
                if event.span.round > 0 {
                    let kind = (*kind).to_owned();
                    let round = self.round_mut(event.span);
                    *round.by_kind.entry(kind).or_insert(0) += 1;
                }
            }
            ObsKind::ResolutionCommit { resolved, .. } => {
                let at = event.at;
                let wall = event.wall_micros;
                let resolved = format!("e{}", resolved.index());
                let round = self.round_mut(event.span);
                // First commit wins: with a resolver group > 1 the
                // replicas commit the same result.
                if round.committed_at.is_none() {
                    round.committed_at = Some(at);
                    round.wall_committed = wall;
                    round.resolved = Some(resolved);
                }
            }
            ObsKind::HandlerStart { .. } => {
                self.handler_open
                    .insert(event.object, (event.at, event.wall_micros));
            }
            ObsKind::HandlerEnd { .. } => {
                if let Some((start, _)) = self.handler_open.remove(&event.object) {
                    let us = event.at.as_micros().saturating_sub(start.as_micros());
                    self.handler_durations.observe(us);
                }
            }
            // Receives mirror sends one-to-one under reliable FIFO
            // channels; counting them against the §4.4 law would
            // double every message. Failover events only need the
            // per-kind `events_total` tally above.
            ObsKind::ActionLeave
            | ObsKind::ResolverElected { .. }
            | ObsKind::AbortionEnd
            | ObsKind::MessageReceived { .. }
            | ObsKind::ActionFailed { .. }
            | ObsKind::ResolverSuspected { .. }
            | ObsKind::ResolverReelected { .. }
            | ObsKind::PeerSuspected { .. }
            | ObsKind::PeerRejoined { .. } => {}
        }
    }

    fn on_run_end(&mut self, at: SimTime) {
        if self.finished {
            return;
        }
        self.finished = true;

        // Close every object's final dwell interval.
        for (state, since) in self.state_since.values() {
            let dwell = at.as_micros().saturating_sub(since.as_micros());
            *self.dwell_us.entry(state.to_string()).or_insert(0) += dwell;
        }

        // Finalize committed rounds in a stable order.
        let mut keys: Vec<(ActionId, u32)> = self.rounds.keys().copied().collect();
        keys.sort_unstable_by_key(|(a, r)| (a.index(), *r));
        for key in keys {
            let (action, round_no) = key;
            let round = &self.rounds[&key];
            let (Some(started), Some(committed)) = (round.started_at, round.committed_at)
            else {
                continue; // round never opened or never committed
            };
            let latency_us = committed.as_micros().saturating_sub(started.as_micros());
            let wall_latency_us = match (round.wall_started, round.wall_committed) {
                (Some(s), Some(c)) => Some(c.saturating_sub(s)),
                _ => None,
            };
            let messages: u64 = round
                .by_kind
                .iter()
                .filter(|(k, _)| LAW_KINDS.contains(&k.as_str()))
                .map(|(_, v)| *v)
                .sum();
            let n = self
                .participants
                .get(&action)
                .map_or(0, |set| set.len() as u64);
            let p = round.raised.len() as u64;
            let q = round.aborters.len() as u64;
            let predicted = match self.law {
                Some(law) if p >= 1 && p + q <= n && n >= 1 => Some(law(n, p, q)),
                _ => None,
            };
            let law_holds = predicted.map(|want| want == messages);
            self.resolution_latency.observe(latency_us);
            if let Some(wall) = wall_latency_us {
                self.resolution_latency_wall.observe(wall);
            }
            self.resolutions.push(ResolutionMetrics {
                action,
                round: round_no,
                latency_us,
                wall_latency_us,
                messages,
                by_kind: round
                    .by_kind
                    .iter()
                    .map(|(k, v)| (k.clone(), *v))
                    .collect(),
                n,
                p,
                q,
                predicted,
                law_holds,
                resolved: round.resolved.clone(),
            });
        }
    }
}

/// Plain-data snapshot of a [`MetricsRegistry`], JSON round-trippable
/// via [`MetricsSnapshot::to_json`] / [`MetricsSnapshot::from_json`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct MetricsSnapshot {
    /// Events per kind label.
    pub events_total: Vec<(String, u64)>,
    /// Messages per wire kind.
    pub messages_total: Vec<(String, u64)>,
    /// Dwell µs per §4.2 state.
    pub state_dwell_us: Vec<(String, u64)>,
    /// Finalized per-round metrics.
    pub resolutions: Vec<ResolutionMetrics>,
    /// Resolution latency histogram (sim µs).
    pub resolution_latency: HistogramSnapshot,
    /// Resolution latency histogram (wall µs), empty for simulations.
    pub resolution_latency_wall: HistogramSnapshot,
    /// Handler duration histogram (sim µs).
    pub handler_durations: HistogramSnapshot,
}

/// Escapes a Prometheus label value per the text exposition format:
/// backslash, double quote and newline must be backslash-escaped.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn pairs_to_json(pairs: &[(String, u64)]) -> JsonValue {
    JsonValue::Obj(
        pairs
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::num(*v)))
            .collect(),
    )
}

fn pairs_from_json(value: Option<&JsonValue>) -> Vec<(String, u64)> {
    value
        .and_then(JsonValue::as_object)
        .map(|fields| {
            fields
                .iter()
                .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                .collect()
        })
        .unwrap_or_default()
}

fn hist_to_json(h: &HistogramSnapshot) -> JsonValue {
    JsonValue::Obj(vec![
        (
            "bounds".into(),
            JsonValue::Arr(h.bounds.iter().map(|&b| JsonValue::num(b)).collect()),
        ),
        (
            "counts".into(),
            JsonValue::Arr(h.counts.iter().map(|&c| JsonValue::num(c)).collect()),
        ),
        ("sum".into(), JsonValue::num(h.sum)),
        ("count".into(), JsonValue::num(h.count)),
        ("p50".into(), JsonValue::num(h.p50)),
        ("p99".into(), JsonValue::num(h.p99)),
        ("p999".into(), JsonValue::num(h.p999)),
    ])
}

fn hist_from_json(value: Option<&JsonValue>) -> HistogramSnapshot {
    let nums = |key: &str| -> Vec<u64> {
        value
            .and_then(|v| v.get(key))
            .and_then(JsonValue::as_array)
            .map(|a| a.iter().filter_map(JsonValue::as_u64).collect())
            .unwrap_or_default()
    };
    let num = |key: &str| -> u64 {
        value
            .and_then(|v| v.get(key))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
    };
    HistogramSnapshot {
        bounds: nums("bounds"),
        counts: nums("counts"),
        sum: num("sum"),
        count: num("count"),
        p50: num("p50"),
        p99: num("p99"),
        p999: num("p999"),
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let resolutions = JsonValue::Arr(
            self.resolutions
                .iter()
                .map(|r| {
                    let mut fields = vec![
                        ("action".into(), JsonValue::num(u64::from(r.action.index()))),
                        ("round".into(), JsonValue::num(u64::from(r.round))),
                        ("latency_us".into(), JsonValue::num(r.latency_us)),
                        (
                            "wall_latency_us".into(),
                            r.wall_latency_us.map_or(JsonValue::Null, JsonValue::num),
                        ),
                        ("messages".into(), JsonValue::num(r.messages)),
                        ("by_kind".into(), pairs_to_json(&r.by_kind)),
                        ("n".into(), JsonValue::num(r.n)),
                        ("p".into(), JsonValue::num(r.p)),
                        ("q".into(), JsonValue::num(r.q)),
                        (
                            "predicted".into(),
                            r.predicted.map_or(JsonValue::Null, JsonValue::num),
                        ),
                        (
                            "law_holds".into(),
                            r.law_holds.map_or(JsonValue::Null, JsonValue::Bool),
                        ),
                    ];
                    fields.push((
                        "resolved".into(),
                        r.resolved
                            .as_ref()
                            .map_or(JsonValue::Null, |s| JsonValue::str(s.clone())),
                    ));
                    JsonValue::Obj(fields)
                })
                .collect(),
        );
        JsonValue::Obj(vec![
            ("events_total".into(), pairs_to_json(&self.events_total)),
            ("messages_total".into(), pairs_to_json(&self.messages_total)),
            ("state_dwell_us".into(), pairs_to_json(&self.state_dwell_us)),
            ("resolutions".into(), resolutions),
            (
                "resolution_latency".into(),
                hist_to_json(&self.resolution_latency),
            ),
            (
                "resolution_latency_wall".into(),
                hist_to_json(&self.resolution_latency_wall),
            ),
            (
                "handler_durations".into(),
                hist_to_json(&self.handler_durations),
            ),
        ])
        .to_string()
    }

    /// Parses a snapshot back from [`Self::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`json::JsonError`] on malformed input.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, json::JsonError> {
        let doc = json::parse(text)?;
        let resolutions = doc
            .get("resolutions")
            .and_then(JsonValue::as_array)
            .map(|rows| {
                rows.iter()
                    .filter_map(|row| {
                        Some(ResolutionMetrics {
                            action: ActionId::new(row.get("action")?.as_u64()? as u32),
                            round: row.get("round")?.as_u64()? as u32,
                            latency_us: row.get("latency_us")?.as_u64()?,
                            wall_latency_us: row
                                .get("wall_latency_us")
                                .and_then(JsonValue::as_u64),
                            messages: row.get("messages")?.as_u64()?,
                            by_kind: pairs_from_json(row.get("by_kind")),
                            n: row.get("n")?.as_u64()?,
                            p: row.get("p")?.as_u64()?,
                            q: row.get("q")?.as_u64()?,
                            predicted: row.get("predicted").and_then(JsonValue::as_u64),
                            law_holds: row.get("law_holds").and_then(JsonValue::as_bool),
                            resolved: row
                                .get("resolved")
                                .and_then(JsonValue::as_str)
                                .map(str::to_owned),
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        Ok(MetricsSnapshot {
            events_total: pairs_from_json(doc.get("events_total")),
            messages_total: pairs_from_json(doc.get("messages_total")),
            state_dwell_us: pairs_from_json(doc.get("state_dwell_us")),
            resolutions,
            resolution_latency: hist_from_json(doc.get("resolution_latency")),
            resolution_latency_wall: hist_from_json(doc.get("resolution_latency_wall")),
            handler_durations: hist_from_json(doc.get("handler_durations")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caex_tree::ExceptionId;

    fn ev(at: u64, object: u32, round: u32, kind: ObsKind) -> ObsEvent {
        ObsEvent {
            at: SimTime::from_micros(at),
            wall_micros: None,
            object: NodeId::new(object),
            span: CorrelationId { action: ActionId::new(0), round },
            kind,
        }
    }

    #[test]
    fn histogram_percentiles_nearest_rank() {
        let mut h = Histogram::new(&[50, 100]);
        assert_eq!(h.p50(), 0); // empty
        for v in 1..=100u64 {
            h.observe(v); // 50 samples ≤50, the rest ≤100
        }
        assert_eq!(h.p50(), 50);
        assert_eq!(h.p99(), 100);
        assert_eq!(h.p999(), 100);
        // The +Inf bucket reports the exact max, not infinity.
        h.observe(50_000);
        assert_eq!(h.p999(), 50_000);
        // Snapshot carries the percentile fields.
        let snap = h.snapshot();
        assert_eq!(snap.p50, 100); // rank 51 of 101 lands in ≤100
        assert_eq!(snap.p999, 50_000);
    }

    #[test]
    fn histogram_percentile_clamps_to_max_within_bucket() {
        let mut h = Histogram::new(&[1_000]);
        h.observe(5);
        h.observe(7);
        // Both samples land in the ≤1000 bucket; the estimate is
        // clamped to the observed max rather than the loose bound.
        assert_eq!(h.p99(), 7);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(&[10, 100]);
        for v in [5, 50, 500] {
            h.observe(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 555);
        assert_eq!(h.mean(), 185);
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 500);
        assert_eq!(
            h.cumulative_buckets(),
            vec![(10, 1), (100, 2), (u64::MAX, 3)]
        );
    }

    /// A hand-built 3-object round matching §4.4 case 1 (single raise,
    /// no nested): messages = 3(n−1) = 6.
    #[test]
    fn registry_checks_case1_law() {
        fn law(n: u64, p: u64, q: u64) -> u64 {
            (n - 1) * (2 * p + 3 * q + 1)
        }
        let mut reg = MetricsRegistry::new().with_law(law);
        for o in 0..3 {
            reg.on_event(&ev(0, o, 0, ObsKind::ActionEnter));
        }
        reg.on_event(&ev(10, 0, 1, ObsKind::ResolutionStart));
        reg.on_event(&ev(
            10,
            0,
            1,
            ObsKind::Raise { exception: ExceptionId::new(1) },
        ));
        for to in 1..3 {
            reg.on_event(&ev(
                10,
                0,
                1,
                ObsKind::MessageSent { kind: "exception", to: NodeId::new(to) },
            ));
        }
        for from in 1..3 {
            reg.on_event(&ev(
                12,
                from,
                1,
                ObsKind::MessageSent { kind: "ack", to: NodeId::new(0) },
            ));
        }
        reg.on_event(&ev(
            15,
            0,
            1,
            ObsKind::ResolutionCommit { resolved: ExceptionId::new(1), raised: 1 },
        ));
        for to in 1..3 {
            reg.on_event(&ev(
                15,
                0,
                1,
                ObsKind::MessageSent { kind: "commit", to: NodeId::new(to) },
            ));
        }
        reg.on_run_end(SimTime::from_micros(20));

        assert_eq!(reg.resolutions().len(), 1);
        let r = &reg.resolutions()[0];
        assert_eq!((r.n, r.p, r.q), (3, 1, 0));
        assert_eq!(r.messages, 6);
        assert_eq!(r.predicted, Some(6));
        assert_eq!(r.law_holds, Some(true));
        assert_eq!(r.latency_us, 5);
        assert!(reg.law_holds());
        assert_eq!(reg.resolution_latency().count(), 1);
    }

    #[test]
    fn dwell_and_handlers_accumulate() {
        let mut reg = MetricsRegistry::new();
        reg.on_event(&ev(0, 1, 0, ObsKind::ActionEnter));
        reg.on_event(&ev(
            10,
            1,
            1,
            ObsKind::StateTransition { from: ObsState::N, to: ObsState::X },
        ));
        reg.on_event(&ev(
            30,
            1,
            1,
            ObsKind::StateTransition { from: ObsState::X, to: ObsState::N },
        ));
        reg.on_event(&ev(
            30,
            1,
            1,
            ObsKind::HandlerStart { exception: ExceptionId::new(1) },
        ));
        reg.on_event(&ev(42, 1, 1, ObsKind::HandlerEnd { signalled: false }));
        reg.on_run_end(SimTime::from_micros(50));
        assert_eq!(reg.state_dwell_us().get("N"), Some(&30)); // 0..10 and 30..50
        assert_eq!(reg.state_dwell_us().get("X"), Some(&20));
        assert_eq!(reg.handler_durations().count(), 1);
        assert_eq!(reg.handler_durations().sum(), 12);
    }

    #[test]
    fn prometheus_exposition_mentions_core_series() {
        let mut reg = MetricsRegistry::new();
        reg.on_event(&ev(0, 0, 0, ObsKind::ActionEnter));
        reg.on_run_end(SimTime::from_micros(1));
        let text = reg.prometheus();
        assert!(text.contains("caex_events_total{kind=\"action_enter\"} 1"));
        assert!(text.contains("# TYPE caex_resolution_latency_us histogram"));
        assert!(text.contains("caex_resolution_latency_us_bucket{le=\"+Inf\"} 0"));
    }

    #[test]
    fn prometheus_escapes_label_values() {
        let mut reg = MetricsRegistry::new();
        // A hostile wire kind: quotes, a backslash and a newline must
        // all be escaped, or the exposition format breaks.
        reg.on_event(&ev(
            0,
            0,
            0,
            ObsKind::MessageSent { kind: "bad\"kind\\x\nline", to: NodeId::new(1) },
        ));
        reg.on_run_end(SimTime::from_micros(1));
        let text = reg.prometheus();
        assert!(
            text.contains(r#"caex_messages_total{kind="bad\"kind\\x\nline"} 1"#),
            "{text}"
        );
        // No raw newline may survive inside a label value.
        for line in text.lines() {
            assert!(
                !line.contains("bad\"kind"),
                "unescaped quote leaked: {line}"
            );
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        fn law(n: u64, p: u64, q: u64) -> u64 {
            (n - 1) * (2 * p + 3 * q + 1)
        }
        let mut reg = MetricsRegistry::new().with_law(law);
        for o in 0..2 {
            reg.on_event(&ev(0, o, 0, ObsKind::ActionEnter));
        }
        reg.on_event(&ev(
            5,
            0,
            1,
            ObsKind::Raise { exception: ExceptionId::new(2) },
        ));
        reg.on_event(&ev(
            5,
            0,
            1,
            ObsKind::MessageSent { kind: "exception", to: NodeId::new(1) },
        ));
        reg.on_event(&ev(
            6,
            1,
            1,
            ObsKind::MessageSent { kind: "ack", to: NodeId::new(0) },
        ));
        reg.on_event(&ev(
            9,
            0,
            1,
            ObsKind::ResolutionCommit { resolved: ExceptionId::new(2), raised: 1 },
        ));
        reg.on_event(&ev(
            9,
            0,
            1,
            ObsKind::MessageSent { kind: "commit", to: NodeId::new(1) },
        ));
        reg.on_run_end(SimTime::from_micros(12));

        let snap = reg.snapshot();
        let text = snap.to_json();
        let back = MetricsSnapshot::from_json(&text).expect("round trip");
        assert_eq!(back, snap);
        assert_eq!(back.resolutions.len(), 1);
        assert_eq!(back.resolutions[0].law_holds, Some(true));
    }
}
