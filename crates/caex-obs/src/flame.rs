//! Folded-stack flame graph construction from an [`ObsEvent`] stream.
//!
//! [`FlameBuilder`] is an [`Observer`] that maintains one frame stack
//! per object — `O<i>` at the root, `A<j>` per entered action, then
//! `abort A<j>` or `handle e<k>` while those spans are open — and
//! charges the time between consecutive events at an object to the
//! stack that was live over that interval, keyed by the resolution
//! round active when the interval started. The output is the standard
//! *folded stack* format (`frame;frame;frame count`) consumed by
//! `flamegraph.pl`, `inferno-flamegraph`, speedscope and friends, with
//! microseconds as the count unit.

use crate::event::{ObsEvent, ObsKind, Observer};
use caex_net::{NodeId, SimTime};
use std::collections::BTreeMap;

/// Builds folded flame-graph stacks from an event stream. Feed it a
/// whole run (directly as an engine's observer, or by replaying a
/// recorded stream), then render with [`FlameBuilder::folded`].
///
/// Dwell is keyed internally by the full `(ActionId, round)` span, so
/// one builder can profile a whole fleet of multiplexed actions: use
/// [`FlameBuilder::folded_for_action`] or
/// [`FlameBuilder::folded_for_span`] to isolate one action's profile,
/// and the round-only views to sum across actions.
#[derive(Debug, Default)]
pub struct FlameBuilder {
    /// Live frame stack per object (root `O<i>` frame included).
    stacks: BTreeMap<NodeId, Vec<String>>,
    /// Timestamp of each object's previous event.
    last_at: BTreeMap<NodeId, SimTime>,
    /// The span each object's current dwell interval started in, as
    /// `(action index, round)`.
    span: BTreeMap<NodeId, (u32, u32)>,
    /// Accumulated microseconds per `(action index, round, folded stack)`.
    folded: BTreeMap<(u32, u32, String), u64>,
}

impl FlameBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges the dwell since `object`'s previous event to the stack
    /// live over the interval, then advances the object's clock.
    fn charge(&mut self, object: NodeId, now: SimTime) {
        let stack = self
            .stacks
            .entry(object)
            .or_insert_with(|| vec![format!("O{}", object.index())]);
        let key = stack.join(";");
        let prev = self.last_at.get(&object).copied().unwrap_or(now);
        let dwell = now.saturating_sub(prev).as_micros();
        if dwell > 0 {
            let (action, round) = self.span.get(&object).copied().unwrap_or((0, 0));
            *self.folded.entry((action, round, key)).or_default() += dwell;
        }
        self.last_at.insert(object, now);
    }

    /// Pops `object`'s stack down to (and including) the deepest frame
    /// with `prefix`; a stray end with no matching start is ignored.
    fn pop_to(&mut self, object: NodeId, prefix: &str) {
        if let Some(stack) = self.stacks.get_mut(&object) {
            if let Some(pos) = stack.iter().rposition(|f| f.starts_with(prefix)) {
                stack.truncate(pos);
            }
        }
    }

    /// The folded stacks over the whole run, one `stack count` line
    /// per distinct stack, lexicographically sorted (deterministic
    /// output for identical streams). Counts are microseconds.
    #[must_use]
    pub fn folded(&self) -> String {
        self.render(|_, _| true)
    }

    /// Like [`FlameBuilder::folded`], restricted to dwell accumulated
    /// while `round` was the object's active resolution round (round
    /// `0` is time outside any resolution), summed across actions.
    #[must_use]
    pub fn folded_for_round(&self, round: u32) -> String {
        self.render(|_, r| r == round)
    }

    /// Like [`FlameBuilder::folded`], restricted to dwell accumulated
    /// under spans of the action with index `action` — one action's
    /// profile out of a multiplexed fleet.
    #[must_use]
    pub fn folded_for_action(&self, action: u32) -> String {
        self.render(|a, _| a == action)
    }

    /// Like [`FlameBuilder::folded`], restricted to one exact
    /// `(action index, round)` span.
    #[must_use]
    pub fn folded_for_span(&self, action: u32, round: u32) -> String {
        self.render(|a, r| a == action && r == round)
    }

    /// Folded lines over the spans selected by `keep`, one line per
    /// distinct stack (dwell summed across selected spans), sorted.
    fn render(&self, keep: impl Fn(u32, u32) -> bool) -> String {
        let mut merged: BTreeMap<&str, u64> = BTreeMap::new();
        for ((a, r, stack), us) in &self.folded {
            if keep(*a, *r) {
                *merged.entry(stack).or_default() += us;
            }
        }
        let mut out = String::new();
        for (stack, us) in merged {
            out.push_str(&format!("{stack} {us}\n"));
        }
        out
    }

    /// Every round that accumulated any dwell, sorted.
    #[must_use]
    pub fn rounds(&self) -> Vec<u32> {
        let mut rounds: Vec<u32> = self.folded.keys().map(|(_, r, _)| *r).collect();
        rounds.sort_unstable();
        rounds.dedup();
        rounds
    }

    /// Every `(action index, round)` span that accumulated any dwell,
    /// sorted.
    #[must_use]
    pub fn spans(&self) -> Vec<(u32, u32)> {
        let mut spans: Vec<(u32, u32)> = self.folded.keys().map(|(a, r, _)| (*a, *r)).collect();
        spans.sort_unstable();
        spans.dedup();
        spans
    }
}

impl Observer for FlameBuilder {
    fn on_event(&mut self, event: &ObsEvent) {
        self.charge(event.object, event.at);
        self.span
            .insert(event.object, (event.span.action.index(), event.span.round));
        let stack = self
            .stacks
            .entry(event.object)
            .or_insert_with(|| vec![format!("O{}", event.object.index())]);
        match &event.kind {
            ObsKind::ActionEnter => stack.push(format!("A{}", event.span.action.index())),
            ObsKind::ActionLeave => {
                self.pop_to(event.object, &format!("A{}", event.span.action.index()));
            }
            ObsKind::AbortionStart { .. } => {
                stack.push(format!("abort A{}", event.span.action.index()));
            }
            ObsKind::AbortionEnd => self.pop_to(event.object, "abort "),
            ObsKind::HandlerStart { exception } => {
                stack.push(format!("handle e{}", exception.index()));
            }
            ObsKind::HandlerEnd { .. } => self.pop_to(event.object, "handle "),
            _ => {}
        }
    }

    fn on_run_end(&mut self, at: SimTime) {
        // Close every object's final dwell interval so time spent
        // after its last event still lands in the graph.
        let objects: Vec<NodeId> = self.stacks.keys().copied().collect();
        for object in objects {
            self.charge(object, at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CorrelationId;
    use caex_action::ActionId;
    use caex_tree::ExceptionId;

    fn ev(at: u64, object: u32, round: u32, kind: ObsKind) -> ObsEvent {
        ObsEvent {
            at: SimTime::from_micros(at),
            wall_micros: None,
            object: NodeId::new(object),
            span: CorrelationId { action: ActionId::new(1), round },
            kind,
        }
    }

    #[test]
    fn folded_stacks_nest_and_charge_dwell() {
        let mut flame = FlameBuilder::new();
        flame.on_event(&ev(0, 1, 0, ObsKind::ActionEnter));
        flame.on_event(&ev(10, 1, 1, ObsKind::Raise { exception: ExceptionId::new(2) }));
        flame.on_event(&ev(15, 1, 1, ObsKind::AbortionStart { depth: 1 }));
        flame.on_event(&ev(40, 1, 1, ObsKind::AbortionEnd));
        flame.on_event(&ev(45, 1, 1, ObsKind::HandlerStart { exception: ExceptionId::new(2) }));
        flame.on_event(&ev(95, 1, 1, ObsKind::HandlerEnd { signalled: false }));
        flame.on_event(&ev(100, 1, 1, ObsKind::ActionLeave));
        flame.on_run_end(SimTime::from_micros(100));
        let folded = flame.folded();
        // Dwell: O1;A1 from 0→15 and 40→45 and 95→100 = 25us,
        // abort 15→40 = 25us, handler 45→95 = 50us.
        assert!(folded.contains("O1;A1 25\n"), "folded was:\n{folded}");
        assert!(folded.contains("O1;A1;abort A1 25\n"), "folded was:\n{folded}");
        assert!(folded.contains("O1;A1;handle e2 50\n"), "folded was:\n{folded}");
        // Every line is `frames space count` — the format flamegraph
        // tooling accepts.
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("space-separated");
            assert!(!stack.is_empty());
            assert!(count.parse::<u64>().is_ok(), "bad count in `{line}`");
        }
    }

    #[test]
    fn per_round_views_partition_the_total() {
        let mut flame = FlameBuilder::new();
        flame.on_event(&ev(0, 0, 0, ObsKind::ActionEnter));
        flame.on_event(&ev(20, 0, 1, ObsKind::ResolutionStart));
        flame.on_event(&ev(50, 0, 1, ObsKind::ActionLeave));
        flame.on_run_end(SimTime::from_micros(50));
        assert_eq!(flame.rounds(), vec![0, 1]);
        // Round 0 covers 0→20 (interval opened before the round began);
        // round 1 covers 20→50.
        assert!(flame.folded_for_round(0).contains("O0;A1 20\n"));
        assert!(flame.folded_for_round(1).contains("O0;A1 30\n"));
        assert!(flame.folded().contains("O0;A1 50\n"));
    }

    #[test]
    fn per_action_views_split_a_multiplexed_stream() {
        // Two actions interleaved on disjoint objects, as a fleet
        // engine would produce them on one shared net.
        fn span_ev(at: u64, object: u32, action: u32, round: u32, kind: ObsKind) -> ObsEvent {
            ObsEvent {
                at: SimTime::from_micros(at),
                wall_micros: None,
                object: NodeId::new(object),
                span: CorrelationId { action: ActionId::new(action), round },
                kind,
            }
        }
        let mut flame = FlameBuilder::new();
        flame.on_event(&span_ev(0, 0, 0, 0, ObsKind::ActionEnter));
        flame.on_event(&span_ev(0, 9, 5, 0, ObsKind::ActionEnter));
        flame.on_event(&span_ev(30, 0, 0, 1, ObsKind::ResolutionStart));
        flame.on_event(&span_ev(40, 9, 5, 1, ObsKind::ResolutionStart));
        flame.on_event(&span_ev(50, 0, 0, 1, ObsKind::ActionLeave));
        flame.on_event(&span_ev(100, 9, 5, 1, ObsKind::ActionLeave));
        flame.on_run_end(SimTime::from_micros(100));
        assert_eq!(flame.spans(), vec![(0, 0), (0, 1), (5, 0), (5, 1)]);
        // Action 0: O0 enters A0, 0→50. Action 5: O9 enters A5, 0→100.
        assert!(flame.folded_for_action(0).contains("O0;A0 50\n"));
        assert!(!flame.folded_for_action(0).contains("O9"));
        assert!(flame.folded_for_action(5).contains("O9;A5 100\n"));
        assert!(flame.folded_for_span(5, 1).contains("O9;A5 60\n"));
        // Round views still sum across the fleet.
        let round1 = flame.folded_for_round(1);
        assert!(round1.contains("O0;A0 20\n"), "{round1}");
        assert!(round1.contains("O9;A5 60\n"), "{round1}");
    }

    #[test]
    fn stray_end_without_start_is_tolerated() {
        let mut flame = FlameBuilder::new();
        flame.on_event(&ev(0, 2, 1, ObsKind::HandlerEnd { signalled: false }));
        flame.on_event(&ev(5, 2, 1, ObsKind::ActionLeave));
        flame.on_run_end(SimTime::from_micros(9));
        let folded = flame.folded();
        assert!(folded.contains("O2 "), "root survives: {folded}");
    }
}
