//! Causal trace analysis: happens-before graphs, critical-path latency
//! attribution, and cross-process trace stitching.
//!
//! The input is any recorded [`ObsEvent`] stream — a single engine's
//! [`crate::Recorder`] output, a JSONL file replayed through
//! [`crate::exporters::event_from_json`], or the merged per-process
//! streams of a `caex-wire` run. From it this module builds a
//! **happens-before DAG**:
//!
//! - *program-order edges*: consecutive events at the same object, in
//!   stream order (engines emit per-object subsequences in causal
//!   order, so this is exact);
//! - *message edges*: the k-th [`ObsKind::MessageReceived`] of a
//!   `(from, to, kind)` triple is paired with the k-th
//!   [`ObsKind::MessageSent`] of the same triple — exact under the
//!   §4.2 FIFO-channel assumption the protocol itself relies on.
//!
//! Over that DAG, [`CausalGraph::critical_path`] extracts the longest
//! latency chain of one `(action, round)` resolution by walking
//! backward from its last event, always to the latest-finishing
//! predecessor. Each hop is attributed to a protocol [`Phase`]
//! (raise propagation, resolver election, resolution, commit/abort,
//! handler dispatch), and because consecutive hops telescope, the
//! phase durations sum *exactly* to the measured end-to-end latency —
//! the same latency the §4.4 analysis prices in messages, priced here
//! in time.
//!
//! For multi-process runs, [`shift_events`] and [`merge_streams`]
//! stitch per-process streams onto one timeline using the per-peer
//! clock-skew offsets estimated by the wire transport (minimum
//! observed `recv − sent` over every frame; see `caex-wire`).

use crate::event::{CorrelationId, ObsEvent, ObsKind};
use crate::json::JsonValue;
use caex_net::NodeId;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The protocol phase a critical-path hop is attributed to, derived
/// from the event that *ends* the hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Raising and propagating exceptions: `Raise`, the informing
    /// messages (`exception`, `have_nested`, `nested_completed`, and
    /// the baselines' report kinds), `ResolutionStart`.
    RaisePropagation,
    /// Electing the resolver: acknowledgement traffic (`ack`,
    /// `cr_ack`, `leave_ready`), state transitions, the election
    /// itself.
    Election,
    /// Resolving the collected set against the exception tree
    /// (`ResolutionCommit`, the CR algorithm's proposals).
    Resolution,
    /// Distributing and applying the decision: `commit` traffic,
    /// abortion spans, action leave.
    CommitAbort,
    /// Running the resolved exception's handlers.
    Handler,
    /// Everything outside the resolution protocol (action entry,
    /// failures).
    Other,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 6] = [
        Phase::RaisePropagation,
        Phase::Election,
        Phase::Resolution,
        Phase::CommitAbort,
        Phase::Handler,
        Phase::Other,
    ];

    /// A stable lowercase label (JSON keys, folded-stack frames,
    /// table headers).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::RaisePropagation => "raise_propagation",
            Phase::Election => "election",
            Phase::Resolution => "resolution",
            Phase::CommitAbort => "commit_abort",
            Phase::Handler => "handler",
            Phase::Other => "other",
        }
    }

    /// Classifies the event that ends a critical-path hop.
    #[must_use]
    pub fn of(kind: &ObsKind) -> Phase {
        let of_msg = |k: &str| match k {
            "exception" | "have_nested" | "nested_completed" | "central_report"
            | "cr_exception" => Phase::RaisePropagation,
            "ack" | "cr_ack" | "leave_ready" => Phase::Election,
            "cr_proposal" => Phase::Resolution,
            "commit" | "central_commit" | "cr_commit" => Phase::CommitAbort,
            _ => Phase::Other,
        };
        match kind {
            ObsKind::Raise { .. } | ObsKind::ResolutionStart => Phase::RaisePropagation,
            ObsKind::StateTransition { .. }
            | ObsKind::ResolverElected { .. }
            | ObsKind::ResolverSuspected { .. }
            | ObsKind::ResolverReelected { .. } => Phase::Election,
            ObsKind::ResolutionCommit { .. } => Phase::Resolution,
            ObsKind::AbortionStart { .. } | ObsKind::AbortionEnd | ObsKind::ActionLeave => {
                Phase::CommitAbort
            }
            ObsKind::HandlerStart { .. } | ObsKind::HandlerEnd { .. } => Phase::Handler,
            ObsKind::MessageSent { kind, .. } | ObsKind::MessageReceived { kind, .. } => {
                of_msg(kind)
            }
            ObsKind::ActionEnter
            | ObsKind::ActionFailed { .. }
            | ObsKind::PeerSuspected { .. }
            | ObsKind::PeerRejoined { .. } => Phase::Other,
        }
    }
}

/// One hop of a critical path: the edge *into* `event_index`, lasting
/// `duration_us` and attributed to `phase`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSegment {
    /// Index of the hop's target event in the analyzed stream.
    pub event_index: usize,
    /// The object the target event happened at.
    pub object: NodeId,
    /// The target event's kind label.
    pub kind: &'static str,
    /// `true` if the hop arrived over a message edge (cross-object),
    /// `false` for a program-order hop.
    pub via_message: bool,
    /// Timestamp of the target event, microseconds.
    pub at_us: u64,
    /// Time elapsed along this hop, microseconds.
    pub duration_us: u64,
    /// The protocol phase this hop's time is charged to.
    pub phase: Phase,
}

/// The critical path of one `(action, round)` resolution: the longest
/// chain of happens-before edges from the round's first event to its
/// last, with per-hop and per-phase latency attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// The resolution this path describes.
    pub span: CorrelationId,
    /// Timestamp of the path's first event, microseconds.
    pub start_us: u64,
    /// Timestamp of the path's last event, microseconds.
    pub end_us: u64,
    /// The hops, in causal order. Their durations telescope:
    /// `sum(duration_us) == end_us - start_us`, always.
    pub segments: Vec<PathSegment>,
}

impl CriticalPath {
    /// End-to-end latency of the round, microseconds.
    #[must_use]
    pub fn total_us(&self) -> u64 {
        self.end_us - self.start_us
    }

    /// Total time charged to each phase, in [`Phase::ALL`] order.
    /// The values sum to [`CriticalPath::total_us`].
    #[must_use]
    pub fn phase_totals(&self) -> Vec<(Phase, u64)> {
        let mut totals: BTreeMap<Phase, u64> = BTreeMap::new();
        for seg in &self.segments {
            *totals.entry(seg.phase).or_default() += seg.duration_us;
        }
        Phase::ALL
            .iter()
            .map(|p| (*p, totals.get(p).copied().unwrap_or(0)))
            .collect()
    }
}

/// A happens-before DAG over a recorded event stream.
///
/// Nodes are the events (by index into the stream handed to
/// [`CausalGraph::build`]); edges are program order plus matched
/// send→receive pairs.
#[derive(Debug)]
pub struct CausalGraph {
    events: Vec<ObsEvent>,
    /// `preds[v]` = (program-order predecessor, message predecessor).
    preds: Vec<(Option<usize>, Option<usize>)>,
    /// Indices of `MessageReceived` events with no matching send.
    unmatched_receives: Vec<usize>,
    /// Indices of `MessageSent` events whose receive never appeared
    /// (in flight at crash, dropped, or an un-instrumented receiver).
    unmatched_sends: Vec<usize>,
}

impl CausalGraph {
    /// Builds the DAG from a stream in engine emission order (for
    /// merged multi-process streams, time-sort first — see
    /// [`merge_streams`]; per-object subsequences must stay in their
    /// original order, which a stable sort preserves).
    ///
    /// Message matching is positional, not order-dependent: the k-th
    /// receive of a `(from, to, kind)` triple pairs with the k-th send
    /// even when residual clock skew placed the receive *before* its
    /// send in the merged stream (on fast links the skew-correction
    /// error can exceed the real one-way delay). The resulting edges
    /// reflect true causality, so the graph stays acyclic.
    #[must_use]
    pub fn build(events: &[ObsEvent]) -> CausalGraph {
        let mut preds: Vec<(Option<usize>, Option<usize>)> = vec![(None, None); events.len()];
        let mut last_at: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut sends: BTreeMap<(NodeId, NodeId, &'static str), VecDeque<usize>> = BTreeMap::new();
        for (i, ev) in events.iter().enumerate() {
            if let Some(&prev) = last_at.get(&ev.object) {
                preds[i].0 = Some(prev);
            }
            last_at.insert(ev.object, i);
            if let ObsKind::MessageSent { kind, to } = &ev.kind {
                sends.entry((ev.object, *to, kind)).or_default().push_back(i);
            }
        }
        let mut unmatched_receives = Vec::new();
        for (i, ev) in events.iter().enumerate() {
            if let ObsKind::MessageReceived { kind, from } = &ev.kind {
                match sends
                    .get_mut(&(*from, ev.object, *kind))
                    .and_then(VecDeque::pop_front)
                {
                    Some(send) => preds[i].1 = Some(send),
                    None => unmatched_receives.push(i),
                }
            }
        }
        let unmatched_sends = sends.into_values().flatten().collect();
        CausalGraph {
            events: events.to_vec(),
            preds,
            unmatched_receives,
            unmatched_sends,
        }
    }

    /// The analyzed events, in the order handed to `build`.
    #[must_use]
    pub fn events(&self) -> &[ObsEvent] {
        &self.events
    }

    /// Receives with no matching send. Non-empty means a stream is
    /// missing (a crashed process) or instrumentation is broken.
    #[must_use]
    pub fn unmatched_receives(&self) -> &[usize] {
        &self.unmatched_receives
    }

    /// Sends whose receive never appeared (in flight at a crash,
    /// dropped by the transport, or an un-instrumented receiver).
    #[must_use]
    pub fn unmatched_sends(&self) -> &[usize] {
        &self.unmatched_sends
    }

    /// Total happens-before edges (program order + message).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.preds
            .iter()
            .map(|(p, m)| usize::from(p.is_some()) + usize::from(m.is_some()))
            .sum()
    }

    /// `true` if the DAG is acyclic. Program-order edges follow each
    /// object's own (causally ordered) subsequence and message edges
    /// follow the FIFO pairing, so a cycle can only mean broken
    /// instrumentation — this is an invariant check, not an expected
    /// failure mode.
    #[must_use]
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm over the predecessor lists.
        let n = self.events.len();
        let mut indegree = vec![0usize; n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (v, (po, msg)) in self.preds.iter().enumerate() {
            for u in [po, msg].into_iter().flatten() {
                succs[*u].push(v);
                indegree[v] += 1;
            }
        }
        let mut queue: VecDeque<usize> =
            (0..n).filter(|&v| indegree[v] == 0).collect();
        let mut seen = 0usize;
        while let Some(u) = queue.pop_front() {
            seen += 1;
            for &v in &succs[u] {
                indegree[v] -= 1;
                if indegree[v] == 0 {
                    queue.push_back(v);
                }
            }
        }
        seen == n
    }

    /// Every `(action, round)` span with `round > 0` present in the
    /// stream, sorted.
    #[must_use]
    pub fn resolution_spans(&self) -> Vec<CorrelationId> {
        let spans: BTreeSet<CorrelationId> = self
            .events
            .iter()
            .filter(|e| e.span.round > 0)
            .map(|e| e.span)
            .collect();
        spans.into_iter().collect()
    }

    fn at_us(&self, i: usize) -> u64 {
        self.events[i].at.as_micros()
    }

    /// Extracts the critical path of `span`: starting from the span's
    /// last event, repeatedly steps to the latest-finishing
    /// predecessor still inside the span (preferring the message edge
    /// on ties — the cross-object hop is the interesting one), until
    /// no in-span predecessor remains. Returns `None` if the span has
    /// no events.
    #[must_use]
    pub fn critical_path(&self, span: CorrelationId) -> Option<CriticalPath> {
        let end = self
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.span == span)
            .max_by_key(|(i, e)| (e.at, *i))
            .map(|(i, _)| i)?;
        let in_span = |i: usize| self.events[i].span == span;
        let mut rev: Vec<(usize, bool)> = Vec::new(); // (event, via_message)
        let mut cur = end;
        loop {
            let (po, msg) = self.preds[cur];
            let po = po.filter(|&u| in_span(u));
            let msg = msg.filter(|&u| in_span(u));
            let step = match (po, msg) {
                (None, None) => break,
                (Some(u), None) => (u, false),
                (None, Some(u)) => (u, true),
                (Some(p), Some(m)) => {
                    // Latest-finishing predecessor wins; the message
                    // edge breaks the tie because it is the hop that
                    // crossed objects.
                    if (self.at_us(m), 1) >= (self.at_us(p), 0) {
                        (m, true)
                    } else {
                        (p, false)
                    }
                }
            };
            rev.push((cur, step.1));
            cur = step.0;
        }
        let start = cur;
        let mut segments = Vec::with_capacity(rev.len());
        // Running-max cursor: residual clock skew can invert adjacent
        // stitched timestamps, so each hop is charged the monotone
        // advance only. The durations then telescope to exactly
        // `at(end) − at(start)` (the end event carries the span's
        // maximum timestamp by construction).
        let mut cursor = self.at_us(start);
        for (target, via_message) in rev.into_iter().rev() {
            let ev = &self.events[target];
            let at = self.at_us(target);
            segments.push(PathSegment {
                event_index: target,
                object: ev.object,
                kind: ev.kind.label(),
                via_message,
                at_us: at,
                duration_us: at.saturating_sub(cursor),
                phase: Phase::of(&ev.kind),
            });
            cursor = cursor.max(at);
        }
        Some(CriticalPath {
            span,
            start_us: self.at_us(start),
            end_us: self.at_us(end),
            segments,
        })
    }

    /// The critical path of every resolution span, in span order.
    #[must_use]
    pub fn critical_paths(&self) -> Vec<CriticalPath> {
        self.resolution_spans()
            .into_iter()
            .filter_map(|s| self.critical_path(s))
            .collect()
    }
}

/// Latency percentiles over a set of samples (nearest-rank).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample, microseconds.
    pub min_us: u64,
    /// Largest sample, microseconds.
    pub max_us: u64,
    /// 50th percentile, microseconds.
    pub p50_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// 99.9th percentile, microseconds.
    pub p999_us: u64,
}

impl LatencySummary {
    /// Summarizes `samples` (order irrelevant). `None` when empty.
    #[must_use]
    pub fn of(samples: &[u64]) -> Option<LatencySummary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = |p: f64| {
            #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
            #[allow(clippy::cast_sign_loss)]
            let idx = ((p * sorted.len() as f64).ceil() as usize).max(1) - 1;
            sorted[idx.min(sorted.len() - 1)]
        };
        Some(LatencySummary {
            count: sorted.len(),
            min_us: sorted[0],
            max_us: sorted[sorted.len() - 1],
            p50_us: rank(0.50),
            p99_us: rank(0.99),
            p999_us: rank(0.999),
        })
    }

    /// The summary as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("count".into(), JsonValue::num(self.count as u64)),
            ("min_us".into(), JsonValue::num(self.min_us)),
            ("max_us".into(), JsonValue::num(self.max_us)),
            ("p50_us".into(), JsonValue::num(self.p50_us)),
            ("p99_us".into(), JsonValue::num(self.p99_us)),
            ("p999_us".into(), JsonValue::num(self.p999_us)),
        ])
    }
}

/// Shifts every event's timestamps by `offset_us` (negative offsets
/// saturate at zero) — the per-stream correction that moves a remote
/// process's events onto the local timeline.
pub fn shift_events(events: &mut [ObsEvent], offset_us: i64) {
    for ev in events {
        let at = i64::try_from(ev.at.as_micros()).unwrap_or(i64::MAX);
        let shifted = u64::try_from(at.saturating_add(offset_us)).unwrap_or(0);
        ev.at = caex_net::SimTime::from_micros(shifted);
        if let Some(w) = ev.wall_micros {
            let w = i64::try_from(w).unwrap_or(i64::MAX);
            ev.wall_micros = Some(u64::try_from(w.saturating_add(offset_us)).unwrap_or(0));
        }
    }
}

/// Merges per-process streams onto one timeline: stable sort by
/// timestamp, which keeps every stream's internal (per-object causal)
/// order — the precondition of [`CausalGraph::build`].
#[must_use]
pub fn merge_streams(streams: Vec<Vec<ObsEvent>>) -> Vec<ObsEvent> {
    let mut merged: Vec<ObsEvent> = streams.into_iter().flatten().collect();
    merged.sort_by_key(|e| e.at);
    merged
}

/// Solves per-stream clock offsets from pairwise skew estimates and
/// returns, for each node, the shift that moves its stream onto the
/// reference node's timeline.
///
/// `skews` holds, per observing node `i`, the transport's estimates
/// `s[i][j] = min(recv_i − sent_j) = floor_delay + (epoch_j − epoch_i)`
/// for each peer `j`. Under symmetric floor delay, the offset of `k`
/// relative to reference `r` is `(s[r][k] − s[k][r]) / 2`; adding it
/// to `k`'s timestamps expresses them on `r`'s clock. Nodes without a
/// pairwise estimate against the reference get offset 0.
#[must_use]
pub fn solve_offsets(
    skews: &BTreeMap<u32, BTreeMap<u32, i64>>,
    reference: u32,
) -> BTreeMap<u32, i64> {
    let mut offsets = BTreeMap::new();
    for &node in skews.keys() {
        if node == reference {
            offsets.insert(node, 0i64);
            continue;
        }
        let to = skews.get(&reference).and_then(|m| m.get(&node));
        let back = skews.get(&node).and_then(|m| m.get(&reference));
        let offset = match (to, back) {
            (Some(a), Some(b)) => (a - b) / 2,
            _ => 0,
        };
        offsets.insert(node, offset);
    }
    offsets
}

/// Renders critical paths as a fixed-width text table: one row per
/// span, end-to-end latency, and the per-phase breakdown. The phase
/// columns sum to the total by construction.
#[must_use]
pub fn render_table(paths: &[CriticalPath]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<10} {:>10}", "span", "total_us"));
    for phase in Phase::ALL {
        out.push_str(&format!(" {:>18}", phase.label()));
    }
    out.push('\n');
    for path in paths {
        out.push_str(&format!("{:<10} {:>10}", path.span.to_string(), path.total_us()));
        for (_, us) in path.phase_totals() {
            out.push_str(&format!(" {us:>18}"));
        }
        out.push('\n');
    }
    out
}

/// The full analysis as one JSON document: DAG shape, per-span
/// critical paths with phase breakdowns, and the latency summary over
/// all spans.
#[must_use]
pub fn report_json(graph: &CausalGraph, paths: &[CriticalPath]) -> JsonValue {
    let path_objs = paths
        .iter()
        .map(|p| {
            let phases = p
                .phase_totals()
                .into_iter()
                .map(|(ph, us)| (ph.label().to_owned(), JsonValue::num(us)))
                .collect();
            let segments = p
                .segments
                .iter()
                .map(|s| {
                    JsonValue::Obj(vec![
                        ("object".into(), JsonValue::str(s.object.to_string())),
                        ("kind".into(), JsonValue::str(s.kind)),
                        ("via_message".into(), JsonValue::Bool(s.via_message)),
                        ("at_us".into(), JsonValue::num(s.at_us)),
                        ("duration_us".into(), JsonValue::num(s.duration_us)),
                        ("phase".into(), JsonValue::str(s.phase.label())),
                    ])
                })
                .collect();
            JsonValue::Obj(vec![
                ("span".into(), JsonValue::str(p.span.to_string())),
                ("start_us".into(), JsonValue::num(p.start_us)),
                ("end_us".into(), JsonValue::num(p.end_us)),
                ("total_us".into(), JsonValue::num(p.total_us())),
                ("phases".into(), JsonValue::Obj(phases)),
                ("segments".into(), JsonValue::Arr(segments)),
            ])
        })
        .collect();
    let latencies: Vec<u64> = paths.iter().map(CriticalPath::total_us).collect();
    JsonValue::Obj(vec![
        ("events".into(), JsonValue::num(graph.events().len() as u64)),
        ("edges".into(), JsonValue::num(graph.edge_count() as u64)),
        ("acyclic".into(), JsonValue::Bool(graph.is_acyclic())),
        (
            "unmatched_receives".into(),
            JsonValue::num(graph.unmatched_receives().len() as u64),
        ),
        (
            "unmatched_sends".into(),
            JsonValue::num(graph.unmatched_sends().len() as u64),
        ),
        ("critical_paths".into(), JsonValue::Arr(path_objs)),
        (
            "latency".into(),
            LatencySummary::of(&latencies).map_or(JsonValue::Null, |s| s.to_json()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use caex_action::ActionId;
    use caex_net::SimTime;

    fn ev(at: u64, object: u32, round: u32, kind: ObsKind) -> ObsEvent {
        ObsEvent {
            at: SimTime::from_micros(at),
            wall_micros: None,
            object: NodeId::new(object),
            span: CorrelationId { action: ActionId::new(0), round },
            kind,
        }
    }

    /// Two objects, one exception crossing between them, a commit
    /// coming back: the minimal cross-object resolution shape.
    fn two_object_round() -> Vec<ObsEvent> {
        vec![
            ev(0, 0, 1, ObsKind::ResolutionStart),
            ev(0, 0, 1, ObsKind::Raise { exception: caex_tree::ExceptionId::new(1) }),
            ev(5, 0, 1, ObsKind::MessageSent { kind: "exception", to: NodeId::new(1) }),
            ev(105, 1, 1, ObsKind::MessageReceived { kind: "exception", from: NodeId::new(0) }),
            ev(110, 1, 1, ObsKind::MessageSent { kind: "ack", to: NodeId::new(0) }),
            ev(210, 0, 1, ObsKind::MessageReceived { kind: "ack", from: NodeId::new(1) }),
            ev(
                215,
                0,
                1,
                ObsKind::ResolutionCommit { resolved: caex_tree::ExceptionId::new(1), raised: 1 },
            ),
            ev(220, 0, 1, ObsKind::MessageSent { kind: "commit", to: NodeId::new(1) }),
            ev(320, 1, 1, ObsKind::MessageReceived { kind: "commit", from: NodeId::new(0) }),
        ]
    }

    #[test]
    fn builds_program_and_message_edges() {
        let graph = CausalGraph::build(&two_object_round());
        assert!(graph.is_acyclic());
        assert!(graph.unmatched_receives().is_empty());
        assert!(graph.unmatched_sends().is_empty());
        // O0 has 6 events → 5 program-order edges; O1 has 3 → 2;
        // plus the 3 matched send→receive edges.
        assert_eq!(graph.edge_count(), 5 + 2 + 3);
    }

    #[test]
    fn critical_path_telescopes_to_end_to_end_latency() {
        let graph = CausalGraph::build(&two_object_round());
        let span = CorrelationId { action: ActionId::new(0), round: 1 };
        let path = graph.critical_path(span).expect("span has events");
        assert_eq!(path.start_us, 0);
        assert_eq!(path.end_us, 320);
        let sum: u64 = path.segments.iter().map(|s| s.duration_us).sum();
        assert_eq!(sum, path.total_us());
        let phase_sum: u64 = path.phase_totals().iter().map(|(_, us)| us).sum();
        assert_eq!(phase_sum, path.total_us());
        // The path crosses objects through all three messages.
        assert_eq!(path.segments.iter().filter(|s| s.via_message).count(), 3);
        // The final hop is the commit landing at O1.
        let last = path.segments.last().expect("non-empty");
        assert_eq!(last.kind, "message_received");
        assert_eq!(last.phase, Phase::CommitAbort);
    }

    #[test]
    fn fifo_pairing_matches_kth_send_with_kth_receive() {
        let events = vec![
            ev(0, 0, 1, ObsKind::MessageSent { kind: "ack", to: NodeId::new(1) }),
            ev(1, 0, 1, ObsKind::MessageSent { kind: "ack", to: NodeId::new(1) }),
            ev(10, 1, 1, ObsKind::MessageReceived { kind: "ack", from: NodeId::new(0) }),
            ev(11, 1, 1, ObsKind::MessageReceived { kind: "ack", from: NodeId::new(0) }),
        ];
        let graph = CausalGraph::build(&events);
        assert_eq!(graph.preds[2].1, Some(0));
        assert_eq!(graph.preds[3].1, Some(1));
        assert!(graph.unmatched_receives().is_empty());
    }

    #[test]
    fn skew_inverted_receive_still_matches_and_telescopes() {
        // Residual skew put the receive 3us *before* its send in the
        // merged stream: the positional matcher still pairs them, and
        // the running-max cursor keeps the phase sums exact.
        let events = vec![
            ev(0, 0, 1, ObsKind::ResolutionStart),
            ev(7, 1, 1, ObsKind::MessageReceived { kind: "exception", from: NodeId::new(0) }),
            ev(10, 0, 1, ObsKind::MessageSent { kind: "exception", to: NodeId::new(1) }),
            ev(20, 1, 1, ObsKind::MessageSent { kind: "ack", to: NodeId::new(0) }),
            ev(30, 0, 1, ObsKind::MessageReceived { kind: "ack", from: NodeId::new(1) }),
        ];
        let graph = CausalGraph::build(&events);
        assert!(graph.is_acyclic());
        assert!(graph.unmatched_receives().is_empty());
        assert!(graph.unmatched_sends().is_empty());
        assert_eq!(graph.preds[1].1, Some(2), "receive paired despite inversion");
        let span = CorrelationId { action: ActionId::new(0), round: 1 };
        let path = graph.critical_path(span).expect("span has events");
        let sum: u64 = path.segments.iter().map(|s| s.duration_us).sum();
        assert_eq!(sum, path.total_us(), "telescoping survives the inversion");
    }

    #[test]
    fn orphan_receive_and_lost_send_are_diagnosed() {
        let events = vec![
            ev(0, 0, 1, ObsKind::MessageSent { kind: "exception", to: NodeId::new(2) }),
            ev(10, 1, 1, ObsKind::MessageReceived { kind: "ack", from: NodeId::new(3) }),
        ];
        let graph = CausalGraph::build(&events);
        assert_eq!(graph.unmatched_sends(), &[0]);
        assert_eq!(graph.unmatched_receives(), &[1]);
        assert!(graph.is_acyclic());
    }

    #[test]
    fn latency_summary_percentiles() {
        let samples: Vec<u64> = (1..=1000).collect();
        let s = LatencySummary::of(&samples).expect("non-empty");
        assert_eq!(s.count, 1000);
        assert_eq!(s.min_us, 1);
        assert_eq!(s.max_us, 1000);
        assert_eq!(s.p50_us, 500);
        assert_eq!(s.p99_us, 990);
        assert_eq!(s.p999_us, 999);
        assert_eq!(LatencySummary::of(&[]), None);
    }

    #[test]
    fn shift_and_merge_stitch_streams() {
        let mut remote = vec![ev(50, 1, 1, ObsKind::ResolutionStart)];
        shift_events(&mut remote, -20);
        assert_eq!(remote[0].at.as_micros(), 30);
        let mut negative = vec![ev(5, 1, 1, ObsKind::ResolutionStart)];
        shift_events(&mut negative, -20);
        assert_eq!(negative[0].at.as_micros(), 0, "saturates at zero");
        let local = vec![ev(10, 0, 1, ObsKind::ResolutionStart)];
        let merged = merge_streams(vec![local, remote]);
        assert_eq!(merged.len(), 2);
        assert!(merged[0].at <= merged[1].at);
    }

    #[test]
    fn solve_offsets_halves_the_asymmetry() {
        // Node 1's clock is 100us ahead of node 0's, floor delay 10us:
        // s[0][1] = 10 + 100 = 110, s[1][0] = 10 - 100 = -90.
        let mut skews: BTreeMap<u32, BTreeMap<u32, i64>> = BTreeMap::new();
        skews.insert(0, BTreeMap::from([(1, 110)]));
        skews.insert(1, BTreeMap::from([(0, -90)]));
        let offsets = solve_offsets(&skews, 0);
        assert_eq!(offsets.get(&0), Some(&0));
        // (110 − (−90)) / 2 = 100: node 1's epoch started 100us later
        // in true time, so its local stamps read 100us small and the
        // +100 shift lands them on node 0's clock.
        assert_eq!(offsets.get(&1), Some(&100));
    }

    #[test]
    fn render_table_phases_sum_to_total() {
        let graph = CausalGraph::build(&two_object_round());
        let paths = graph.critical_paths();
        let table = render_table(&paths);
        assert!(table.contains("A0#r1"));
        assert!(table.contains("raise_propagation"));
        let doc = report_json(&graph, &paths);
        assert_eq!(doc.get("acyclic").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(doc.get("unmatched_receives").and_then(JsonValue::as_u64), Some(0));
    }
}
