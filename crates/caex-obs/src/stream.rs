//! Streaming the event stream over a real socket: [`TcpExporter`]
//! (the emitting side, an [`Observer`]) and [`EventCollector`] (the
//! receiving side), closing the ROADMAP item "stream exporters over a
//! real socket".
//!
//! The wire format is the stable JSONL of
//! [`event_to_json`](crate::exporters::event_to_json): one flat JSON
//! object per line, newline-terminated, UTF-8. A collector rebuilds
//! typed [`ObsEvent`]s with
//! [`event_from_json`](crate::exporters::event_from_json) and can
//! replay them into any local observer stack (metrics registry,
//! watchdog, trace exporter) — which is how `caex-wire`'s coordinator
//! watches a multi-process run: each participant process streams its
//! events to the coordinator's collector, and invariant checking runs
//! on the merged stream.
//!
//! Blocking I/O only (the workspace has no async runtime): the
//! exporter writes through a [`BufWriter`] and flushes on
//! [`Observer::on_run_end`]; the collector spawns one thread per
//! accepted connection.

use crate::event::{ObsEvent, Observer};
use crate::exporters::{event_from_json, event_to_json};
use crate::json;
use caex_net::SimTime;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

/// An [`Observer`] that streams every event as one JSONL line over a
/// TCP connection.
///
/// Export errors (collector gone, connection reset) are absorbed and
/// remembered rather than panicking the instrumented run — losing
/// telemetry must not fail the protocol. Check [`TcpExporter::is_healthy`]
/// if delivery matters.
#[derive(Debug)]
pub struct TcpExporter {
    writer: BufWriter<TcpStream>,
    exported: u64,
    failed: bool,
}

impl TcpExporter {
    /// Connects to a collector at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the connection error.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Ok(Self::over(stream))
    }

    /// Connects with a bounded connect timeout.
    ///
    /// # Errors
    ///
    /// Propagates the connection error (including the timeout).
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        Ok(Self::over(stream))
    }

    /// Wraps an already-connected stream.
    #[must_use]
    pub fn over(stream: TcpStream) -> Self {
        let _ = stream.set_nodelay(true);
        TcpExporter {
            writer: BufWriter::new(stream),
            exported: 0,
            failed: false,
        }
    }

    /// Events successfully handed to the socket buffer so far.
    #[must_use]
    pub fn exported(&self) -> u64 {
        self.exported
    }

    /// `false` once any write or flush has failed; later events are
    /// silently dropped.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        !self.failed
    }

    /// Flushes buffered lines to the socket.
    ///
    /// # Errors
    ///
    /// Propagates the flush error (and marks the exporter unhealthy).
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush().inspect_err(|_| self.failed = true)
    }
}

impl Observer for TcpExporter {
    fn on_event(&mut self, event: &ObsEvent) {
        if self.failed {
            return;
        }
        let mut line = event_to_json(event).to_string();
        line.push('\n');
        match self.writer.write_all(line.as_bytes()) {
            Ok(()) => self.exported += 1,
            Err(_) => self.failed = true,
        }
    }

    fn on_run_end(&mut self, _at: SimTime) {
        let _ = self.flush();
    }
}

/// The receiving end: accepts exporter connections and rebuilds typed
/// event streams.
///
/// # Examples
///
/// ```
/// use caex_obs::stream::{EventCollector, TcpExporter};
/// use caex_obs::{ObsEvent, ObsKind, CorrelationId, Observer};
/// use caex_action::ActionId;
/// use caex_net::{NodeId, SimTime};
///
/// let collector = EventCollector::bind("127.0.0.1:0").unwrap();
/// let addr = collector.local_addr().unwrap();
/// let handle = std::thread::spawn(move || collector.collect(1).unwrap());
///
/// let mut exporter = TcpExporter::connect(addr).unwrap();
/// exporter.on_event(&ObsEvent {
///     at: SimTime::from_micros(1),
///     wall_micros: None,
///     object: NodeId::new(0),
///     span: CorrelationId { action: ActionId::new(0), round: 0 },
///     kind: ObsKind::ActionEnter,
/// });
/// exporter.on_run_end(SimTime::from_micros(2));
/// drop(exporter); // closes the connection; collect() returns
///
/// let streams = handle.join().unwrap();
/// assert_eq!(streams.len(), 1);
/// assert_eq!(streams[0].len(), 1);
/// ```
#[derive(Debug)]
pub struct EventCollector {
    listener: TcpListener,
}

impl EventCollector {
    /// Binds a listener (use port `0` to let the OS pick).
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(EventCollector {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address (hand it to exporters).
    ///
    /// # Errors
    ///
    /// Propagates the lookup error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts exactly `connections` exporters and reads each to EOF
    /// on its own thread. Returns one event `Vec` per connection, in
    /// accept order; within a `Vec`, events keep the exporter's
    /// emission order (the per-object order invariant survives the
    /// socket). Lines that fail to parse are skipped — a collector
    /// must tolerate a crashing exporter's torn final line.
    ///
    /// # Errors
    ///
    /// Propagates accept errors.
    ///
    /// # Panics
    ///
    /// Panics if a reader thread panicked.
    pub fn collect(self, connections: usize) -> io::Result<Vec<Vec<ObsEvent>>> {
        let mut joins = Vec::with_capacity(connections);
        for _ in 0..connections {
            let (stream, _) = self.listener.accept()?;
            joins.push(thread::spawn(move || read_stream(stream)));
        }
        Ok(joins
            .into_iter()
            .map(|j| j.join().expect("collector reader thread"))
            .collect())
    }
}

fn read_stream(stream: TcpStream) -> Vec<ObsEvent> {
    let reader = BufReader::new(stream);
    let mut events = Vec::new();
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        if let Ok(doc) = json::parse(&line) {
            if let Ok(event) = event_from_json(&doc) {
                events.push(event);
            }
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CorrelationId, ObsKind, Recorder};
    use caex_action::ActionId;
    use caex_net::NodeId;
    use caex_tree::ExceptionId;

    fn ev(at: u64, kind: ObsKind) -> ObsEvent {
        ObsEvent {
            at: SimTime::from_micros(at),
            wall_micros: Some(at),
            object: NodeId::new(1),
            span: CorrelationId { action: ActionId::new(0), round: 1 },
            kind,
        }
    }

    #[test]
    fn events_survive_the_socket_round_trip() {
        let collector = EventCollector::bind("127.0.0.1:0").unwrap();
        let addr = collector.local_addr().unwrap();
        let handle = thread::spawn(move || collector.collect(2).unwrap());

        let sent: Vec<ObsEvent> = vec![
            ev(1, ObsKind::ActionEnter),
            ev(5, ObsKind::Raise { exception: ExceptionId::new(2) }),
            ev(9, ObsKind::ResolutionCommit { resolved: ExceptionId::new(1), raised: 1 }),
        ];
        for _ in 0..2 {
            let sent = sent.clone();
            let mut exporter = TcpExporter::connect(addr).unwrap();
            for e in &sent {
                exporter.on_event(e);
            }
            exporter.on_run_end(SimTime::from_micros(10));
            assert!(exporter.is_healthy());
            assert_eq!(exporter.exported(), 3);
        }

        let streams = handle.join().unwrap();
        assert_eq!(streams.len(), 2);
        for stream in &streams {
            assert_eq!(*stream, sent, "emission order must survive the socket");
        }
    }

    #[test]
    fn collected_stream_replays_into_local_observers() {
        let collector = EventCollector::bind("127.0.0.1:0").unwrap();
        let addr = collector.local_addr().unwrap();
        let handle = thread::spawn(move || collector.collect(1).unwrap());
        {
            let mut exporter = TcpExporter::connect(addr).unwrap();
            exporter.on_event(&ev(1, ObsKind::ActionEnter));
            exporter.on_event(&ev(2, ObsKind::ActionLeave));
            exporter.on_run_end(SimTime::from_micros(3));
        }
        let streams = handle.join().unwrap();
        let mut recorder = Recorder::new();
        for event in streams.into_iter().flatten() {
            recorder.on_event(&event);
        }
        assert_eq!(recorder.events.len(), 2);
    }

    #[test]
    fn exporter_to_dead_collector_degrades_gracefully() {
        // Bind then drop: the port is closed by the time we connect.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        match TcpExporter::connect(addr) {
            Err(_) => {} // refused outright: fine
            Ok(mut exporter) => {
                // Accepted by a TIME_WAIT ghost; writes must not panic.
                for i in 0..100 {
                    exporter.on_event(&ev(i, ObsKind::ActionEnter));
                }
                exporter.on_run_end(SimTime::from_micros(1));
            }
        }
    }

    #[test]
    fn torn_lines_are_skipped() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let good = event_to_json(&ev(1, ObsKind::ActionEnter)).to_string();
            s.write_all(good.as_bytes()).unwrap();
            s.write_all(b"\n{\"at_us\":2,\"object\":\"O1\",\"tr").unwrap(); // torn
        });
        let (stream, _) = listener.accept().unwrap();
        writer.join().unwrap();
        let events = read_stream(stream);
        assert_eq!(events.len(), 1);
    }
}
