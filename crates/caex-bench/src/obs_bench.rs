//! E19 — the observability benchmark behind `BENCH_PR2.json`.
//!
//! Runs every built-in workload under the full `caex-obs` stack
//! ([`MetricsRegistry`] + [`Watchdog`]) and reports, per workload, the
//! resolution latency, the per-round message count with the live §4.4
//! law verdict, and the watchdog verdict. Everything is virtual-time
//! only, so the JSON is byte-deterministic and can be checked in and
//! pinned by tests.

use caex::{analysis, workloads};
use caex_net::NetConfig;
use caex_obs::{JsonValue, MetricsRegistry, Tee, Watchdog};

/// One workload's measured observability row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsBenchRow {
    /// Workload name (e.g. `case1(8)`).
    pub workload: String,
    /// Participants of the first resolved round.
    pub n: u64,
    /// Raisers of the first resolved round.
    pub p: u64,
    /// Nested objects of the first resolved round.
    pub q: u64,
    /// Virtual commit latency of the first round (µs).
    pub latency_us: u64,
    /// §4.4-countable messages of the first round.
    pub messages: u64,
    /// The `(N−1)(2P+3Q+1)` prediction, when the law applies.
    pub predicted: Option<u64>,
    /// Whether every round's live count matched its prediction.
    pub law_holds: Option<bool>,
    /// The exception the first round committed.
    pub resolved: Option<String>,
    /// Total resolution rounds observed in the run.
    pub rounds: u64,
    /// Whether the invariant watchdog saw no violation.
    pub watchdog_clean: bool,
}

/// The benchmark's workload suite: the three §4.4 cases at `N = 8`, a
/// mixed general point, Fig. 3 and both §4.3 worked examples.
fn suite() -> Vec<(String, workloads::Workload)> {
    vec![
        ("case1(8)".into(), workloads::case1(8, NetConfig::default())),
        ("case2(8)".into(), workloads::case2(8, NetConfig::default())),
        ("case3(8)".into(), workloads::case3(8, NetConfig::default())),
        (
            "general(8,3,2)".into(),
            workloads::general(8, 3, 2, NetConfig::default()),
        ),
        ("fig3".into(), workloads::fig3(NetConfig::default())),
        (
            "example1".into(),
            workloads::example1(NetConfig::default()).0,
        ),
        (
            "example2".into(),
            workloads::example2(NetConfig::default()).0,
        ),
    ]
}

/// Runs the suite and collects one row per workload.
///
/// # Panics
///
/// Panics if a workload resolves nothing (every built-in resolves at
/// least one round).
#[must_use]
pub fn bench_pr2() -> Vec<ObsBenchRow> {
    suite()
        .into_iter()
        .map(|(name, workload)| {
            let mut metrics = MetricsRegistry::new().with_law(analysis::messages_general);
            let mut watchdog = Watchdog::new();
            {
                let mut tee = Tee::new().with(&mut metrics).with(&mut watchdog);
                let _ = workload.scenario.run_observed(&mut tee);
            }
            let first = metrics
                .resolutions()
                .first()
                .unwrap_or_else(|| panic!("{name}: no resolution observed"));
            ObsBenchRow {
                workload: name,
                n: first.n,
                p: first.p,
                q: first.q,
                latency_us: first.latency_us,
                messages: first.messages,
                predicted: first.predicted,
                law_holds: first.law_holds,
                resolved: first.resolved.clone(),
                rounds: metrics.resolutions().len() as u64,
                watchdog_clean: watchdog.is_clean(),
            }
        })
        .collect()
}

/// Serializes rows as the `BENCH_PR2.json` document.
#[must_use]
pub fn bench_pr2_json(rows: &[ObsBenchRow]) -> JsonValue {
    #[allow(clippy::cast_precision_loss)]
    let num = |v: u64| JsonValue::Num(v as f64);
    let workloads = rows
        .iter()
        .map(|r| {
            JsonValue::Obj(vec![
                ("workload".into(), JsonValue::Str(r.workload.clone())),
                ("n".into(), num(r.n)),
                ("p".into(), num(r.p)),
                ("q".into(), num(r.q)),
                ("latency_us".into(), num(r.latency_us)),
                ("messages".into(), num(r.messages)),
                (
                    "predicted".into(),
                    r.predicted.map_or(JsonValue::Null, num),
                ),
                (
                    "law_holds".into(),
                    r.law_holds.map_or(JsonValue::Null, JsonValue::Bool),
                ),
                (
                    "resolved".into(),
                    r.resolved
                        .clone()
                        .map_or(JsonValue::Null, JsonValue::Str),
                ),
                ("rounds".into(), num(r.rounds)),
                ("watchdog_clean".into(), JsonValue::Bool(r.watchdog_clean)),
            ])
        })
        .collect();
    JsonValue::Obj(vec![
        ("bench".into(), JsonValue::Str("BENCH_PR2".into())),
        ("workloads".into(), JsonValue::Arr(workloads)),
    ])
}

/// Validates a `BENCH_PR2.json` document: the watchdog must be clean on
/// every workload, and every §4.4 workload (`case*`, `general*`) must
/// report a live message count equal to its closed-form prediction.
///
/// # Errors
///
/// Returns the first violated property as a human-readable message.
pub fn validate_bench_pr2(doc: &JsonValue) -> Result<usize, String> {
    let rows = doc
        .get("workloads")
        .and_then(JsonValue::as_array)
        .ok_or("missing workloads array")?;
    if rows.is_empty() {
        return Err("empty workloads array".into());
    }
    for row in rows {
        let name = row
            .get("workload")
            .and_then(JsonValue::as_str)
            .ok_or("row without workload name")?;
        if row.get("watchdog_clean").and_then(JsonValue::as_bool) != Some(true) {
            return Err(format!("{name}: watchdog not clean"));
        }
        if name.starts_with("case") || name.starts_with("general") {
            if row.get("law_holds").and_then(JsonValue::as_bool) != Some(true) {
                return Err(format!("{name}: §4.4 law violated"));
            }
            let messages = row.get("messages").and_then(JsonValue::as_u64);
            let predicted = row.get("predicted").and_then(JsonValue::as_u64);
            if messages.is_none() || messages != predicted {
                return Err(format!(
                    "{name}: messages {messages:?} != predicted {predicted:?}"
                ));
            }
        }
    }
    Ok(rows.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_rows_cover_the_suite_and_validate() {
        let rows = bench_pr2();
        assert_eq!(rows.len(), 7);
        let doc = bench_pr2_json(&rows);
        assert_eq!(validate_bench_pr2(&doc), Ok(7));
    }

    #[test]
    fn case_rows_match_the_closed_forms() {
        let rows = bench_pr2();
        let by_name = |n: &str| {
            rows.iter()
                .find(|r| r.workload == n)
                .unwrap_or_else(|| panic!("{n} missing"))
                .clone()
        };
        assert_eq!(by_name("case1(8)").messages, analysis::messages_case1(8));
        assert_eq!(by_name("case2(8)").messages, analysis::messages_case2(8));
        assert_eq!(by_name("case3(8)").messages, analysis::messages_case3(8));
        assert_eq!(
            by_name("general(8,3,2)").messages,
            analysis::messages_general(8, 3, 2)
        );
    }

    #[test]
    fn validation_rejects_dirty_watchdog() {
        let doc = JsonValue::Obj(vec![(
            "workloads".into(),
            JsonValue::Arr(vec![JsonValue::Obj(vec![
                ("workload".into(), JsonValue::Str("case1(2)".into())),
                ("watchdog_clean".into(), JsonValue::Bool(false)),
            ])]),
        )]);
        assert!(validate_bench_pr2(&doc).is_err());
    }
}
