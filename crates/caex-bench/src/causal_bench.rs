//! E20 — the causal-analysis benchmark behind `BENCH_PR7.json`.
//!
//! Runs a deterministic suite of workloads (the §4.3 worked examples
//! on the simulator, the centralized baseline, and the CR domino
//! workload), records the full `caex-obs` event stream, builds the
//! happens-before DAG, and reports per workload the DAG shape
//! (events, edges, acyclicity, orphan diagnostics), every resolution
//! round's critical path with its per-phase latency attribution, and
//! the latency percentiles across rounds. Everything runs in virtual
//! time, so the JSON is byte-deterministic and pinned by
//! `tests/bench_pr7.rs`.

use caex::{central, cr, workloads};
use caex_net::{NetConfig, NodeId, SimTime};
use caex_obs::causal::{CausalGraph, CriticalPath};
use caex_obs::{JsonValue, LatencySummary, ObsEvent, Recorder};
use caex_tree::{chain_tree, interleaved_reduced_trees, ExceptionId};
use std::sync::Arc;

/// One resolution round's critical-path summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRow {
    /// The `(action, round)` span label, e.g. `A1#r1`.
    pub span: String,
    /// End-to-end latency of the round, microseconds.
    pub total_us: u64,
    /// Per-phase latency, `(label, µs)` in [`caex_obs::Phase::ALL`]
    /// order; sums to `total_us` by the telescoping construction.
    pub phases: Vec<(&'static str, u64)>,
}

/// One workload's causal-analysis row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalBenchRow {
    /// Workload name.
    pub workload: String,
    /// Events recorded.
    pub events: u64,
    /// Happens-before edges (program order + matched messages).
    pub edges: u64,
    /// Whether the DAG is acyclic (must be).
    pub acyclic: bool,
    /// Receives with no matching send (must be 0).
    pub unmatched_receives: u64,
    /// Sends whose receive never appeared (must be 0 on clean runs).
    pub unmatched_sends: u64,
    /// One row per resolution round, in span order.
    pub spans: Vec<SpanRow>,
    /// Latency percentiles across the rounds.
    pub latency: Option<LatencySummary>,
}

fn analyze(name: &str, events: &[ObsEvent]) -> CausalBenchRow {
    let graph = CausalGraph::build(events);
    let paths = graph.critical_paths();
    row_from(name, &graph, &paths)
}

fn row_from(name: &str, graph: &CausalGraph, paths: &[CriticalPath]) -> CausalBenchRow {
    let spans = paths
        .iter()
        .map(|p| SpanRow {
            span: p.span.to_string(),
            total_us: p.total_us(),
            phases: p
                .phase_totals()
                .into_iter()
                .map(|(ph, us)| (ph.label(), us))
                .collect(),
        })
        .collect();
    let latencies: Vec<u64> = paths.iter().map(CriticalPath::total_us).collect();
    CausalBenchRow {
        workload: name.to_owned(),
        events: graph.events().len() as u64,
        edges: graph.edge_count() as u64,
        acyclic: graph.is_acyclic(),
        unmatched_receives: graph.unmatched_receives().len() as u64,
        unmatched_sends: graph.unmatched_sends().len() as u64,
        spans,
        latency: LatencySummary::of(&latencies),
    }
}

/// Runs the suite and collects one row per workload: both §4.3 worked
/// examples on the simulator, the centralized-coordinator baseline on
/// an exception storm, and the CR domino workload.
#[must_use]
pub fn bench_pr7() -> Vec<CausalBenchRow> {
    let mut rows = Vec::new();
    type Example = fn(NetConfig) -> (workloads::Workload, workloads::ExampleIds);
    for (name, make) in [
        ("example1", workloads::example1 as Example),
        ("example2", workloads::example2 as Example),
    ] {
        let (workload, _ids) = make(NetConfig::default());
        let mut recorder = Recorder::new();
        let _ = workload.scenario.run_observed(&mut recorder);
        rows.push(analyze(name, &recorder.events));
    }

    // Centralized baseline: N = 6, every non-coordinator raises.
    let n = 6;
    let tree = Arc::new(chain_tree(n));
    let raises: Vec<_> = (1..n)
        .map(|i| (NodeId::new(i), ExceptionId::new(i)))
        .collect();
    let mut recorder = Recorder::new();
    let _ = central::run_observed(
        n,
        tree,
        NodeId::new(0),
        &raises,
        SimTime::from_millis(1),
        NetConfig::default(),
        &mut recorder,
    );
    rows.push(analyze("central(6)", &recorder.events));

    // CR domino workload: chain of 8, two interleaved parties.
    let len = 8;
    let tree = Arc::new(chain_tree(len));
    let (odd, even) = interleaved_reduced_trees(&tree, len);
    let mut recorder = Recorder::new();
    let _ = cr::run_observed(
        2,
        tree,
        vec![odd, even],
        &[(NodeId::new(1), ExceptionId::new(len))],
        NetConfig::default(),
        &mut recorder,
    );
    rows.push(analyze("cr-domino(8)", &recorder.events));
    rows
}

/// Serializes rows as the `BENCH_PR7.json` document.
#[must_use]
pub fn bench_pr7_json(rows: &[CausalBenchRow]) -> JsonValue {
    let workloads = rows
        .iter()
        .map(|r| {
            let spans = r
                .spans
                .iter()
                .map(|s| {
                    let phases = s
                        .phases
                        .iter()
                        .map(|(label, us)| ((*label).to_owned(), JsonValue::num(*us)))
                        .collect();
                    JsonValue::Obj(vec![
                        ("span".into(), JsonValue::Str(s.span.clone())),
                        ("total_us".into(), JsonValue::num(s.total_us)),
                        ("phases".into(), JsonValue::Obj(phases)),
                    ])
                })
                .collect();
            JsonValue::Obj(vec![
                ("workload".into(), JsonValue::Str(r.workload.clone())),
                ("events".into(), JsonValue::num(r.events)),
                ("edges".into(), JsonValue::num(r.edges)),
                ("acyclic".into(), JsonValue::Bool(r.acyclic)),
                (
                    "unmatched_receives".into(),
                    JsonValue::num(r.unmatched_receives),
                ),
                ("unmatched_sends".into(), JsonValue::num(r.unmatched_sends)),
                ("critical_paths".into(), JsonValue::Arr(spans)),
                (
                    "latency".into(),
                    r.latency.as_ref().map_or(JsonValue::Null, LatencySummary::to_json),
                ),
            ])
        })
        .collect();
    JsonValue::Obj(vec![
        ("bench".into(), JsonValue::Str("BENCH_PR7".into())),
        ("workloads".into(), JsonValue::Arr(workloads)),
    ])
}

/// Validates a `BENCH_PR7.json` document: every workload's DAG must be
/// acyclic with every receive matched to a send, must carry at least
/// one critical path, and every critical path's phase durations must
/// sum exactly to its end-to-end latency.
///
/// # Errors
///
/// Returns the first violated property as a human-readable message.
pub fn validate_bench_pr7(doc: &JsonValue) -> Result<usize, String> {
    let rows = doc
        .get("workloads")
        .and_then(JsonValue::as_array)
        .ok_or("missing workloads array")?;
    if rows.is_empty() {
        return Err("empty workloads array".into());
    }
    for row in rows {
        let name = row
            .get("workload")
            .and_then(JsonValue::as_str)
            .ok_or("row without workload name")?;
        if row.get("acyclic").and_then(JsonValue::as_bool) != Some(true) {
            return Err(format!("{name}: happens-before graph has a cycle"));
        }
        if row.get("unmatched_receives").and_then(JsonValue::as_u64) != Some(0) {
            return Err(format!("{name}: receive without a matching send"));
        }
        if row.get("unmatched_sends").and_then(JsonValue::as_u64) != Some(0) {
            return Err(format!("{name}: send whose receive never appeared"));
        }
        let paths = row
            .get("critical_paths")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("{name}: missing critical_paths"))?;
        if paths.is_empty() {
            return Err(format!("{name}: no resolution round analyzed"));
        }
        for path in paths {
            let span = path.get("span").and_then(JsonValue::as_str).unwrap_or("?");
            let total = path
                .get("total_us")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("{name}/{span}: missing total_us"))?;
            let phases = path
                .get("phases")
                .and_then(JsonValue::as_object)
                .ok_or_else(|| format!("{name}/{span}: missing phases"))?;
            let sum: u64 = phases
                .iter()
                .filter_map(|(_, v)| v.as_u64())
                .sum();
            if sum != total {
                return Err(format!(
                    "{name}/{span}: phases sum to {sum}, total is {total}"
                ));
            }
        }
        if row.get("latency").map(|l| matches!(l, JsonValue::Null)) != Some(false) {
            return Err(format!("{name}: missing latency summary"));
        }
    }
    Ok(rows.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_rows_cover_the_suite_and_validate() {
        let rows = bench_pr7();
        assert_eq!(rows.len(), 4);
        let doc = bench_pr7_json(&rows);
        assert_eq!(validate_bench_pr7(&doc), Ok(4));
    }

    #[test]
    fn rows_are_deterministic() {
        let a = bench_pr7_json(&bench_pr7()).to_string();
        let b = bench_pr7_json(&bench_pr7()).to_string();
        assert_eq!(a, b);
    }

    #[test]
    fn validation_rejects_cyclic_graphs() {
        let doc = JsonValue::Obj(vec![(
            "workloads".into(),
            JsonValue::Arr(vec![JsonValue::Obj(vec![
                ("workload".into(), JsonValue::Str("example1".into())),
                ("acyclic".into(), JsonValue::Bool(false)),
            ])]),
        )]);
        assert!(validate_bench_pr7(&doc).is_err());
    }

    #[test]
    fn validation_rejects_phase_sum_mismatch() {
        let doc = JsonValue::Obj(vec![(
            "workloads".into(),
            JsonValue::Arr(vec![JsonValue::Obj(vec![
                ("workload".into(), JsonValue::Str("w".into())),
                ("acyclic".into(), JsonValue::Bool(true)),
                ("unmatched_receives".into(), JsonValue::num(0)),
                ("unmatched_sends".into(), JsonValue::num(0)),
                (
                    "critical_paths".into(),
                    JsonValue::Arr(vec![JsonValue::Obj(vec![
                        ("span".into(), JsonValue::Str("A1#r1".into())),
                        ("total_us".into(), JsonValue::num(100)),
                        (
                            "phases".into(),
                            JsonValue::Obj(vec![("election".into(), JsonValue::num(40))]),
                        ),
                    ])]),
                ),
            ])]),
        )]);
        let err = validate_bench_pr7(&doc).unwrap_err();
        assert!(err.contains("phases sum"), "{err}");
    }
}
