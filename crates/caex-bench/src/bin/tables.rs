//! Regenerates every table/figure of the paper's evaluation on the
//! executed protocol. See `EXPERIMENTS.md` for the experiment index.
//!
//! Run with: `cargo run -p caex-bench --bin tables`
//!
//! `--bench-json <path>` additionally runs the E19 observability suite
//! (metrics registry + invariant watchdog over every built-in
//! workload), validates it, and writes `BENCH_PR2.json`-format output;
//! the process exits nonzero if a §4.4 law or watchdog invariant fails.
//!
//! `--causal-json <path>` runs the E20 causal-analysis suite
//! (happens-before DAGs and critical-path attribution over the worked
//! examples and baselines) and writes `BENCH_PR7.json`-format output,
//! exiting nonzero if a DAG or phase-sum invariant fails.
//!
//! `--load-json <path>` runs the E21 saturation study (open-loop
//! Poisson load through the sharded fleet engine vs the `central` and
//! `cr` baselines) and writes `BENCH_PR10.json`-format output, exiting
//! nonzero if the study's structure or a per-action §4.4 law fails.

use caex_bench::{
    render_table, table_abort_depth, table_case1, table_case2, table_case3,
    table_central_vs_elected, table_cr_vs_new, table_domino, table_examples, table_fifo_ablation,
    table_general_grid, table_leave_protocols, table_multicast, table_no_overhead,
    table_resolver_group, table_strategies, table_wire_bytes,
};

fn main() {
    let mut out = String::new();
    out.push_str(
        "caex — executed reproduction of the §4.4 analysis, §4.3 examples and \
         §3.3/Fig.1 comparisons\n(measured = real messages counted in the protocol \
         execution; predicted = the paper's formula)",
    );
    out.push('\n');
    let ns: Vec<u32> = vec![2, 4, 8, 16, 32, 64];

    // E1..E3: the three §4.4 cases.
    for (title, rows, formula) in [
        (
            "Table 1 (E1) — case 1: one exception, no nesting",
            table_case1(&ns),
            "3(N-1)",
        ),
        (
            "Table 2 (E2) — case 2: one exception, all others nested",
            table_case2(&ns),
            "3N(N-1)",
        ),
        (
            "Table 3 (E3) — case 3: all N raise simultaneously",
            table_case3(&ns),
            "(N-1)(2N+1)",
        ),
    ] {
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|p| {
                vec![
                    p.x.to_string(),
                    p.measured.to_string(),
                    p.predicted.to_string(),
                    if p.exact() {
                        "exact".into()
                    } else {
                        "MISMATCH".into()
                    },
                ]
            })
            .collect();
        out.push_str(&render_table(
            title,
            &["N", "measured", formula, "match"],
            &body,
        ));
    }

    // E4: the general law grid.
    let n = 8;
    let grid = table_general_grid(n);
    let body: Vec<Vec<String>> = grid
        .iter()
        .map(|g| {
            vec![
                g.p.to_string(),
                g.q.to_string(),
                g.measured.to_string(),
                g.predicted.to_string(),
                if g.measured == g.predicted {
                    "exact".into()
                } else {
                    "MISMATCH".into()
                },
            ]
        })
        .collect();
    out.push_str(&render_table(
        &format!("Table 4 (E4) — general law (N-1)(2P+3Q+1) at N={n}"),
        &["P", "Q", "measured", "predicted", "match"],
        &body,
    ));

    // E5: CR vs new.
    let cmp = table_cr_vs_new(&[2, 4, 8, 16, 32]);
    let body: Vec<Vec<String>> = cmp
        .iter()
        .map(|c| {
            vec![
                c.n.to_string(),
                c.new_messages.to_string(),
                c.cr_messages.to_string(),
                format!("{:.1}x", c.ratio()),
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Table 5 (E5) — new algorithm O(N^2) vs Campbell-Randell O(N^3)",
        &["N", "new (all raise)", "CR (domino)", "CR/new"],
        &body,
    ));
    let g_new = cmp.last().unwrap().new_messages as f64 / cmp[cmp.len() - 2].new_messages as f64;
    let g_cr = cmp.last().unwrap().cr_messages as f64 / cmp[cmp.len() - 2].cr_messages as f64;
    out.push_str(&format!(
        "growth when N doubles (last step): new x{g_new:.1} (quadratic ~4), CR x{g_cr:.1} (cubic ~8)"
    ));
    out.push('\n');

    // E6: the §3.3 domino effect.
    let rows = table_domino(&[2, 4, 8, 16, 32]);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|d| {
            vec![
                d.chain_len.to_string(),
                d.cr_raised.to_string(),
                d.new_raised.to_string(),
                d.cr_messages.to_string(),
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Table 6 (E6) — §3.3 domino effect (chain tree, interleaved reduced trees)",
        &["chain len", "CR raises", "new raises", "CR msgs"],
        &body,
    ));

    // E7/E8: the worked examples.
    let rows = table_examples();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, resolver, resolved, msgs)| {
            vec![
                name.clone(),
                resolver.to_string(),
                resolved.to_string(),
                msgs.to_string(),
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Table 7 (E7/E8) — worked examples of §4.3",
        &["example", "resolver", "resolved", "messages"],
        &body,
    ));

    // E9: Fig. 1 strategies.
    let rows = table_strategies(&[0, 100, 1_000, 10_000, 100_000], 50);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|s| {
            vec![
                if s.nested_remaining_us == u64::MAX {
                    "belated (never)".into()
                } else {
                    s.nested_remaining_us.to_string()
                },
                s.abort_commit_us.to_string(),
                s.wait_commit_us
                    .map_or("DEADLOCK".into(), |us| us.to_string()),
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Table 8 (E9) — Fig. 1 strategies: abort (1b) vs wait (1a), commit time in us",
        &["nested remaining (us)", "abort commit", "wait commit"],
        &body,
    ));

    // E11: abortion-handler delay.
    let rows = table_abort_depth(&[0, 1, 2, 4, 8], 1_000);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|d| {
            vec![
                d.depth.to_string(),
                d.handler_cost_us.to_string(),
                d.commit_us.to_string(),
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Table 9 (E11) — resolution delay vs nesting depth (abortion handlers, §4.4)",
        &["depth", "handler cost (us)", "commit at (us)"],
        &body,
    ));

    // E12: no overhead without exceptions.
    let rows = table_no_overhead(&[2, 8, 32, 128]);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|(n, m)| vec![n.to_string(), m.to_string()])
        .collect();
    out.push_str(&render_table(
        "Table 10 (E12) — no overhead when no exception is raised (§4.4)",
        &["N", "protocol messages"],
        &body,
    ));

    // E13: the §4.5 reliable-multicast regime.
    let rows = table_multicast(&[2, 4, 8, 16, 32]);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|m| {
            vec![
                m.n.to_string(),
                m.point_to_point.to_string(),
                m.multicasts.to_string(),
                m.predicted_multicasts.to_string(),
                if m.multicasts == m.predicted_multicasts {
                    "exact".into()
                } else {
                    "MISMATCH".into()
                },
            ]
        })
        .collect();
    out.push_str(&
        render_table(
            "Table 11 (E13) — §4.5 reliable multicast: P+2Q+1 multicasts replace (N-1)(2P+3Q+1) messages (case-2 workload)",
            &["N", "point-to-point", "multicasts", "P+2Q+1", "match"],
            &body
        )
    );

    // E14: resolver groups.
    let rows = table_resolver_group(8, 3, &[1, 2, 3, 5]);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|g| {
            vec![
                g.k.to_string(),
                g.measured.to_string(),
                g.predicted.to_string(),
                if g.measured == g.predicted {
                    "exact".into()
                } else {
                    "MISMATCH".into()
                },
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Table 12 (E14) — §4.4 resolver groups (N=8, P=3): 'only a constant factor'",
        &["k", "measured", "base+(min(k,P)-1)(N-1)", "match"],
        &body,
    ));

    // E15: FIFO ablation.
    let (with_fifo, without_fifo, seeds) = table_fifo_ablation(40);
    out.push_str(&render_table(
        "Table 13 (E15) — the §4.2 FIFO assumption is load-bearing (case-3, N=6, heavy jitter)",
        &["channels", "runs", "protocol anomalies"],
        &[
            vec!["FIFO".into(), seeds.to_string(), with_fifo.to_string()],
            vec![
                "non-FIFO".into(),
                seeds.to_string(),
                without_fifo.to_string(),
            ],
        ],
    ));

    // E16: wire bytes.
    let rows = table_wire_bytes(&[2, 4, 8, 16, 32]);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|b| {
            vec![
                b.n.to_string(),
                b.messages.to_string(),
                b.wire_bytes.to_string(),
                format!("{:.1}", b.wire_bytes as f64 / b.messages as f64),
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Table 14 (E16) — wire-byte volume (caex::codec encoding, case-3 workload)",
        &["N", "messages", "bytes", "bytes/msg"],
        &body,
    ));

    // E17: centralized vs decentralized manager.
    let rows = table_leave_protocols(&[2, 4, 8, 16]);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|l| {
            vec![
                l.n.to_string(),
                l.managed.to_string(),
                l.distributed.to_string(),
                l.predicted.to_string(),
                if l.distributed == l.predicted {
                    "exact".into()
                } else {
                    "MISMATCH".into()
                },
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Table 15 (E17) — synchronized leave: centralized manager (free) vs decentralized N(N-1)",
        &["N", "managed", "distributed", "N(N-1)", "match"],
        &body,
    ));

    // E18: central coordinator vs elected resolver.
    let rows = table_central_vs_elected(&[4, 8, 16, 32]);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|c| {
            vec![
                c.n.to_string(),
                c.elected_messages.to_string(),
                c.central_messages.to_string(),
                c.elected_latency_us.to_string(),
                c.central_latency_us.to_string(),
                if c.central_incomplete_with_tight_window {
                    "INCOMPLETE".into()
                } else {
                    "ok".into()
                },
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Table 16 (E18) — fixed coordinator vs the paper's elected resolver (P=N-1 storm)",
        &[
            "N",
            "elected msgs",
            "central msgs",
            "elected us",
            "central us (1ms window)",
            "tight window",
        ],
        &body,
    ));

    out.push_str("\nAll tables regenerated from live protocol executions.");
    out.push('\n');

    print!("{out}");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            let path = args.next().expect("--out requires a path");
            std::fs::write(&path, &out).expect("failed to write tables output");
            eprintln!("tables written to {path}");
        } else if arg == "--bench-json" {
            let path = args.next().expect("--bench-json requires a path");
            let rows = caex_bench::obs_bench::bench_pr2();
            let doc = caex_bench::obs_bench::bench_pr2_json(&rows);
            match caex_bench::obs_bench::validate_bench_pr2(&doc) {
                Ok(count) => {
                    let mut text = doc.to_string();
                    text.push('\n');
                    std::fs::write(&path, text).expect("failed to write bench json");
                    eprintln!("bench json ({count} workloads, laws + watchdog ok) written to {path}");
                }
                Err(why) => {
                    eprintln!("bench json validation FAILED: {why}");
                    std::process::exit(1);
                }
            }
        } else if arg == "--load-json" {
            let path = args.next().expect("--load-json requires a path");
            let cells = caex_load::suite::bench_pr10();
            let doc = caex_load::suite::bench_pr10_json(&cells);
            match caex_load::suite::validate_bench_pr10(&doc) {
                Ok(count) => {
                    eprint!("{}", caex_load::suite::render_saturation_table(&doc));
                    let mut text = doc.to_string();
                    text.push('\n');
                    std::fs::write(&path, text).expect("failed to write load json");
                    eprintln!(
                        "load json ({count} cells, saturation + §4.4 laws ok) written to {path}"
                    );
                }
                Err(why) => {
                    eprintln!("load json validation FAILED: {why}");
                    std::process::exit(1);
                }
            }
        } else if arg == "--causal-json" {
            let path = args.next().expect("--causal-json requires a path");
            let rows = caex_bench::causal_bench::bench_pr7();
            let doc = caex_bench::causal_bench::bench_pr7_json(&rows);
            match caex_bench::causal_bench::validate_bench_pr7(&doc) {
                Ok(count) => {
                    let mut text = doc.to_string();
                    text.push('\n');
                    std::fs::write(&path, text).expect("failed to write causal json");
                    eprintln!(
                        "causal json ({count} workloads, DAG + phase-sum invariants ok) written to {path}"
                    );
                }
                Err(why) => {
                    eprintln!("causal json validation FAILED: {why}");
                    std::process::exit(1);
                }
            }
        }
    }
}
