//! The `caex-report` binary: record observability traces and run the
//! causal analysis over them.
//!
//! ```text
//! # record a workload's full ObsEvent stream as JSONL:
//! caex-report record --workload example2 --out ex2.jsonl
//!
//! # analyze any recorded stream (an engine recording or the merged
//! # `caex-wire --obs-out` trace of a multi-process run):
//! caex-report analyze --in ex2.jsonl --table
//! caex-report analyze --in ex2.jsonl --json report.json --folded ex2.folded
//! caex-report analyze --in ex2.jsonl --folded-round 1 | flamegraph.pl
//! caex-report analyze --in ex2.jsonl --check
//! ```
//!
//! `--table` prints the per-round critical-path table (one row per
//! `(action, round)`, phase columns summing to the total); `--json`
//! writes the full report document; `--folded` writes folded flame
//! stacks consumable by `flamegraph.pl` / speedscope (`--folded-round
//! <r>` prints one resolution round's stacks to stdout); `--check`
//! verifies the causal invariants (acyclic happens-before graph, every
//! receive matched to a send, phase attribution summing exactly to
//! end-to-end latency) and exits nonzero on violation.

use caex::workloads;
use caex_net::NetConfig;
use caex_obs::causal::{self, CausalGraph};
use caex_obs::exporters::{event_from_json, event_to_json};
use caex_obs::{FlameBuilder, ObsEvent, Observer, Recorder};
use std::io::Write;
use std::path::Path;

/// Parsed command line: one subcommand, then `--name value` flags
/// (`--table` and `--check` are bare).
struct Args {
    command: String,
    map: Vec<(String, Option<String>)>,
}

const BARE_FLAGS: &[&str] = &["table", "check"];

impl Args {
    fn parse() -> Result<Args, String> {
        let mut iter = std::env::args().skip(1);
        let command = iter.next().ok_or("usage: caex-report <record|analyze> ...")?;
        let mut map = Vec::new();
        let mut pending: Option<String> = None;
        for arg in iter {
            if let Some(name) = arg.strip_prefix("--") {
                if let Some(prev) = pending.take() {
                    return Err(format!("flag --{prev} needs a value"));
                }
                if BARE_FLAGS.contains(&name) {
                    map.push((name.to_string(), None));
                } else {
                    pending = Some(name.to_string());
                }
            } else if let Some(name) = pending.take() {
                map.push((name, Some(arg)));
            } else {
                return Err(format!("unexpected positional argument `{arg}`"));
            }
        }
        if let Some(prev) = pending {
            return Err(format!("flag --{prev} needs a value"));
        }
        Ok(Args { command, map })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.map
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.map.iter().any(|(k, _)| k == name)
    }
}

fn record_main(args: &Args) -> Result<(), String> {
    let workload = args.get("workload").ok_or("--workload is required")?;
    let out = args.get("out").ok_or("--out is required")?;
    let mut recorder = Recorder::new();
    match workload {
        "example1" => {
            let (w, _) = workloads::example1(NetConfig::default());
            let _ = w.scenario.run_observed(&mut recorder);
        }
        "example2" => {
            let (w, _) = workloads::example2(NetConfig::default());
            let _ = w.scenario.run_observed(&mut recorder);
        }
        other => return Err(format!("unknown workload `{other}` (example1|example2)")),
    }
    write_jsonl(Path::new(out), &recorder.events)?;
    eprintln!(
        "caex-report: recorded {} events of {workload} to {out}",
        recorder.events.len()
    );
    Ok(())
}

fn write_jsonl(path: &Path, events: &[ObsEvent]) -> Result<(), String> {
    let mut buf = String::new();
    for event in events {
        buf.push_str(&event_to_json(event).to_string());
        buf.push('\n');
    }
    std::fs::write(path, buf).map_err(|e| format!("writing {}: {e}", path.display()))
}

fn read_jsonl(path: &Path) -> Result<Vec<ObsEvent>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("reading {}: {e}", path.display()))?;
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = caex_obs::json::parse(line)
            .map_err(|e| format!("{}:{}: bad JSON: {e:?}", path.display(), lineno + 1))?;
        let event = event_from_json(&doc)
            .map_err(|e| format!("{}:{}: bad event: {e}", path.display(), lineno + 1))?;
        events.push(event);
    }
    Ok(events)
}

/// The `--check` invariants; any violation is a hard failure.
fn check(graph: &CausalGraph) -> Result<(), String> {
    if !graph.is_acyclic() {
        return Err("happens-before graph has a cycle".into());
    }
    if !graph.unmatched_receives().is_empty() {
        return Err(format!(
            "{} receive(s) without a matching send",
            graph.unmatched_receives().len()
        ));
    }
    let paths = graph.critical_paths();
    if paths.is_empty() {
        return Err("no resolution round found in the stream".into());
    }
    for path in &paths {
        let sum: u64 = path.phase_totals().iter().map(|(_, us)| us).sum();
        if sum != path.total_us() {
            return Err(format!(
                "{}: phase durations sum to {sum}, end-to-end latency is {}",
                path.span,
                path.total_us()
            ));
        }
    }
    Ok(())
}

fn analyze_main(args: &Args) -> Result<(), String> {
    let input = args.get("in").ok_or("--in is required")?;
    let events = read_jsonl(Path::new(input))?;
    let graph = CausalGraph::build(&events);
    let paths = graph.critical_paths();
    eprintln!(
        "caex-report: {} events, {} edges, acyclic={}, unmatched_receives={}, unmatched_sends={}, rounds={}",
        events.len(),
        graph.edge_count(),
        graph.is_acyclic(),
        graph.unmatched_receives().len(),
        graph.unmatched_sends().len(),
        paths.len()
    );
    let mut produced = false;
    if let Some(out) = args.get("json") {
        let doc = causal::report_json(&graph, &paths);
        std::fs::write(out, format!("{doc}\n"))
            .map_err(|e| format!("writing {out}: {e}"))?;
        produced = true;
    }
    if args.get("folded").is_some() || args.get("folded-round").is_some() {
        let mut flame = FlameBuilder::new();
        for event in &events {
            flame.on_event(event);
        }
        if let Some(last) = events.iter().map(|e| e.at).max() {
            flame.on_run_end(last);
        }
        if let Some(out) = args.get("folded") {
            std::fs::write(out, flame.folded()).map_err(|e| format!("writing {out}: {e}"))?;
            produced = true;
        }
        // `--folded-round <r>` prints one round's folded stacks to
        // stdout (round 0 is dwell outside any resolution), for piping
        // straight into flamegraph tooling.
        if let Some(round) = args.get("folded-round") {
            let round: u32 = round
                .parse()
                .map_err(|_| format!("bad --folded-round value `{round}`"))?;
            if !flame.rounds().contains(&round) {
                return Err(format!(
                    "round {round} accumulated no dwell (rounds seen: {:?})",
                    flame.rounds()
                ));
            }
            let mut stdout = std::io::stdout().lock();
            stdout
                .write_all(flame.folded_for_round(round).as_bytes())
                .map_err(|e| format!("writing folded stacks: {e}"))?;
            produced = true;
        }
    }
    if args.has("check") {
        check(&graph).map_err(|e| format!("check failed: {e}"))?;
        eprintln!("caex-report: check passed");
        produced = true;
    }
    if args.has("table") || !produced {
        let mut stdout = std::io::stdout().lock();
        stdout
            .write_all(causal::render_table(&paths).as_bytes())
            .map_err(|e| format!("writing table: {e}"))?;
    }
    Ok(())
}

fn main() {
    let outcome = Args::parse().and_then(|args| match args.command.as_str() {
        "record" => record_main(&args),
        "analyze" => analyze_main(&args),
        other => Err(format!("unknown subcommand `{other}` (record|analyze)")),
    });
    if let Err(e) = outcome {
        eprintln!("caex-report: {e}");
        std::process::exit(1);
    }
}
