//! Experiment runners regenerating every table and figure of the
//! paper's evaluation (see `EXPERIMENTS.md` at the repository root for
//! the experiment index and DESIGN.md §5 for the mapping).
//!
//! The paper (ICDCS'96) is an algorithm-and-analysis paper: its
//! evaluation artifacts are the message-complexity formulas of §4.4,
//! the two worked examples of §4.3, the nested-action figures and the
//! §3.3 domino analysis. Each function here *executes* the protocol on
//! the corresponding workload and returns rows pairing the measured
//! value with the paper's prediction. The `tables` binary prints them;
//! the criterion benches time them; unit tests pin the shapes.


pub mod causal_bench;
pub mod obs_bench;

use caex::thread_engine::ThreadRunner;
use caex::{analysis, cr, workloads, NestedStrategy, Scenario};
use caex_action::{AbortionOutcome, ActionRegistry, ActionScope, HandlerTable};
use caex_net::{NetConfig, NodeId, SimTime};
use caex_tree::{chain_tree, Exception, ExceptionId};
use std::sync::Arc;

/// A `(measured, predicted)` pair for one sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Point {
    /// Sweep coordinate (N, chain length, depth, …).
    pub x: u64,
    /// Messages (or µs) actually executed.
    pub measured: u64,
    /// The paper's closed-form prediction (0 when none exists).
    pub predicted: u64,
}

impl Point {
    /// `true` when measured equals predicted exactly.
    #[must_use]
    pub fn exact(&self) -> bool {
        self.measured == self.predicted
    }
}

/// E1 — §4.4 case 1 (`3(N−1)`) over a sweep of N.
#[must_use]
pub fn table_case1(ns: &[u32]) -> Vec<Point> {
    ns.iter()
        .map(|&n| Point {
            x: n as u64,
            measured: workloads::case1(n, NetConfig::default())
                .run()
                .total_messages(),
            predicted: analysis::messages_case1(n as u64),
        })
        .collect()
}

/// E2 — §4.4 case 2 (`3N(N−1)`) over a sweep of N.
#[must_use]
pub fn table_case2(ns: &[u32]) -> Vec<Point> {
    ns.iter()
        .map(|&n| Point {
            x: n as u64,
            measured: workloads::case2(n, NetConfig::default())
                .run()
                .total_messages(),
            predicted: analysis::messages_case2(n as u64),
        })
        .collect()
}

/// E3 — §4.4 case 3 (`(N−1)(2N+1)`) over a sweep of N.
#[must_use]
pub fn table_case3(ns: &[u32]) -> Vec<Point> {
    ns.iter()
        .map(|&n| Point {
            x: n as u64,
            measured: workloads::case3(n, NetConfig::default())
                .run()
                .total_messages(),
            predicted: analysis::messages_case3(n as u64),
        })
        .collect()
}

/// One row of the E4 general-law grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridPoint {
    /// Raiser count.
    pub p: u32,
    /// Nested-object count.
    pub q: u32,
    /// Executed messages.
    pub measured: u64,
    /// `(N−1)(2P+3Q+1)`.
    pub predicted: u64,
}

/// E4 — the full `(P, Q)` grid of the general law for one N.
#[must_use]
pub fn table_general_grid(n: u32) -> Vec<GridPoint> {
    let mut rows = Vec::new();
    for p in 1..=n {
        for q in 0..=(n - p) {
            let measured = workloads::general(n, p, q, NetConfig::default())
                .run()
                .total_messages();
            rows.push(GridPoint {
                p,
                q,
                measured,
                predicted: analysis::messages_general(n as u64, p as u64, q as u64),
            });
        }
    }
    rows
}

/// One row of the E5 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrComparison {
    /// Participant count.
    pub n: u32,
    /// New algorithm's messages on its worst case (all raise).
    pub new_messages: u64,
    /// CR messages on the domino workload (chain length `2N`,
    /// interleaved reduced trees, one raise).
    pub cr_messages: u64,
}

impl CrComparison {
    /// CR-to-new message ratio.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.cr_messages as f64 / self.new_messages as f64
    }
}

/// E5 — CR (O(N³) domino workload) versus the new algorithm (its own
/// worst case: everyone raises).
#[must_use]
pub fn table_cr_vs_new(ns: &[u32]) -> Vec<CrComparison> {
    ns.iter()
        .map(|&n| {
            let new_messages = workloads::case3(n, NetConfig::default())
                .run()
                .total_messages();
            let len = 2 * n;
            let tree = Arc::new(chain_tree(len));
            let reduced = cr::interleaved_parties(&tree, len, n);
            let cr_messages = cr::run(
                n,
                tree,
                reduced,
                &[(NodeId::new(0), ExceptionId::new(len))],
                NetConfig::default(),
            )
            .total_messages();
            CrComparison {
                n,
                new_messages,
                cr_messages,
            }
        })
        .collect()
}

/// One row of the E6 domino table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DominoPoint {
    /// Chain length of the exception tree.
    pub chain_len: u32,
    /// Exceptions raised under CR (original + third-source re-raises).
    pub cr_raised: u32,
    /// Exceptions raised under the new algorithm (always the original
    /// one: handlers exist for everything, no third source).
    pub new_raised: u32,
    /// CR messages.
    pub cr_messages: u64,
}

/// E6 — the §3.3 domino effect: chain length sweep with two-party
/// interleaved reduced trees; the new algorithm's count stays at 1.
#[must_use]
pub fn table_domino(lens: &[u32]) -> Vec<DominoPoint> {
    lens.iter()
        .map(|&len| {
            let tree = Arc::new(chain_tree(len));
            let (odd, even) = caex_tree::interleaved_reduced_trees(&tree, len);
            let report = cr::run(
                2,
                tree,
                vec![odd, even],
                &[(NodeId::new(1), ExceptionId::new(len))],
                NetConfig::default(),
            );
            DominoPoint {
                chain_len: len,
                cr_raised: report.raised_total,
                new_raised: 1,
                cr_messages: report.total_messages(),
            }
        })
        .collect()
}

/// One row of the E9 strategy comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrategyPoint {
    /// Remaining nested-action duration in µs (`u64::MAX` = belated /
    /// never completes).
    pub nested_remaining_us: u64,
    /// Commit time under Fig. 1(b) abort (µs).
    pub abort_commit_us: u64,
    /// Commit time under Fig. 1(a) wait (µs); `None` = deadlock.
    pub wait_commit_us: Option<u64>,
}

fn strategy_scenario(
    strategy: NestedStrategy,
    remaining: Option<SimTime>,
    abort_cost: SimTime,
) -> Option<u64> {
    let tree = Arc::new(chain_tree(2));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            (0..4).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .unwrap();
    let a2 = reg
        .declare(ActionScope::nested(
            "A2",
            [NodeId::new(1)],
            Arc::clone(&tree),
            a1,
        ))
        .unwrap();
    let mut table = HandlerTable::recover_all(Arc::clone(&tree));
    table.on_abort(abort_cost, || AbortionOutcome::Aborted);
    let report = Scenario::new(Arc::new(reg))
        .with_strategy(strategy)
        .enter_all_at(SimTime::ZERO, a1)
        .enter_at(SimTime::from_micros(1), NodeId::new(1), a2)
        .handlers(NodeId::new(1), a2, table)
        .nested_remaining(NodeId::new(1), a2, remaining)
        .raise_at(
            SimTime::from_micros(10),
            NodeId::new(0),
            Exception::new(ExceptionId::new(1)),
        )
        .run();
    report.resolution_for(a1).map(|r| r.at.as_micros())
}

/// E9 — Fig. 1(a) wait versus Fig. 1(b) abort across nested-action
/// remaining durations; the final row is the belated-participant case
/// where waiting deadlocks.
#[must_use]
pub fn table_strategies(remaining_us: &[u64], abort_cost_us: u64) -> Vec<StrategyPoint> {
    let abort_cost = SimTime::from_micros(abort_cost_us);
    let mut rows: Vec<StrategyPoint> = remaining_us
        .iter()
        .map(|&us| StrategyPoint {
            nested_remaining_us: us,
            abort_commit_us: strategy_scenario(
                NestedStrategy::Abort,
                Some(SimTime::from_micros(us)),
                abort_cost,
            )
            .expect("abort strategy always commits"),
            wait_commit_us: strategy_scenario(
                NestedStrategy::Wait,
                Some(SimTime::from_micros(us)),
                abort_cost,
            ),
        })
        .collect();
    rows.push(StrategyPoint {
        nested_remaining_us: u64::MAX,
        abort_commit_us: strategy_scenario(NestedStrategy::Abort, None, abort_cost)
            .expect("abort strategy ignores belated nested actions"),
        wait_commit_us: strategy_scenario(NestedStrategy::Wait, None, abort_cost),
    });
    rows
}

/// One row of the E11 abortion-delay table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthPoint {
    /// Nesting depth of the deepest object.
    pub depth: u32,
    /// Per-level abortion-handler cost (µs).
    pub handler_cost_us: u64,
    /// Commit time of the outer resolution (µs).
    pub commit_us: u64,
}

/// E11 — resolution delay versus nesting depth and abortion-handler
/// cost (§4.4: "the proposed algorithm may suffer some delays because
/// of the execution of abortion handlers in nested actions").
#[must_use]
pub fn table_abort_depth(depths: &[u32], handler_cost_us: u64) -> Vec<DepthPoint> {
    depths
        .iter()
        .map(|&depth| {
            let tree = Arc::new(chain_tree(2));
            let mut reg = ActionRegistry::new();
            let a1 = reg
                .declare(ActionScope::top_level(
                    "A1",
                    [NodeId::new(0), NodeId::new(1)],
                    Arc::clone(&tree),
                ))
                .unwrap();
            let mut parent = a1;
            let mut nested = Vec::new();
            for d in 0..depth {
                parent = reg
                    .declare(ActionScope::nested(
                        format!("D{d}"),
                        [NodeId::new(1)],
                        Arc::clone(&tree),
                        parent,
                    ))
                    .unwrap();
                nested.push(parent);
            }
            let mut scenario = Scenario::new(Arc::new(reg)).enter_all_at(SimTime::ZERO, a1);
            for (d, &na) in nested.iter().enumerate() {
                let mut table = HandlerTable::recover_all(Arc::clone(&tree));
                table.on_abort(SimTime::from_micros(handler_cost_us), || {
                    AbortionOutcome::Aborted
                });
                scenario = scenario
                    .enter_at(SimTime::from_micros(1 + d as u64), NodeId::new(1), na)
                    .handlers(NodeId::new(1), na, table);
            }
            let report = scenario
                .raise_at(
                    SimTime::from_micros(100),
                    NodeId::new(0),
                    Exception::new(ExceptionId::new(1)),
                )
                .run();
            DepthPoint {
                depth,
                handler_cost_us,
                commit_us: report
                    .resolution_for(a1)
                    .expect("resolution commits")
                    .at
                    .as_micros(),
            }
        })
        .collect()
}

/// E12 — the no-overhead claim: happy-path runs send zero protocol
/// messages regardless of N; returns `(n, messages)` pairs.
#[must_use]
pub fn table_no_overhead(ns: &[u32]) -> Vec<(u32, u64)> {
    ns.iter()
        .map(|&n| {
            let tree = Arc::new(chain_tree(1));
            let mut reg = ActionRegistry::new();
            let a1 = reg
                .declare(ActionScope::top_level(
                    "A1",
                    (0..n).map(NodeId::new),
                    Arc::clone(&tree),
                ))
                .unwrap();
            let mut scenario = Scenario::new(Arc::new(reg)).enter_all_at(SimTime::ZERO, a1);
            for i in 0..n {
                scenario = scenario.complete_at(SimTime::from_micros(100), NodeId::new(i), a1);
            }
            (n, scenario.run().total_messages())
        })
        .collect()
}

/// E7/E8 helper — run both worked examples and report
/// `(example, resolver, resolved, messages)` rows.
#[must_use]
pub fn table_examples() -> Vec<(String, NodeId, ExceptionId, u64)> {
    let (w1, ids1) = workloads::example1(NetConfig::default());
    let r1 = w1.run();
    let res1 = r1.resolution_for(ids1.a1).expect("example 1 resolves");
    let (w2, ids2) = workloads::example2(NetConfig::default());
    let r2 = w2.run();
    let res2 = r2.resolution_for(ids2.a1).expect("example 2 resolves");
    vec![
        (
            "Example 1 (§4.3)".into(),
            res1.resolver,
            res1.resolved.id(),
            r1.total_messages(),
        ),
        (
            "Example 2 (§4.3, Fig. 4)".into(),
            res2.resolver,
            res2.resolved.id(),
            r2.total_messages(),
        ),
    ]
}

/// One row of the E13 multicast table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MulticastPoint {
    /// Participant count.
    pub n: u32,
    /// Point-to-point messages (the executed protocol).
    pub point_to_point: u64,
    /// Fan-outs = multicasts the §4.5 reliable-multicast regime needs.
    pub multicasts: u64,
    /// The closed form `P + 2Q + 1`.
    pub predicted_multicasts: u64,
}

/// E13 — §4.5: point-to-point messages versus the reliable-multicast
/// count on the case-2 workload (1 raiser, N−1 nested).
#[must_use]
pub fn table_multicast(ns: &[u32]) -> Vec<MulticastPoint> {
    ns.iter()
        .map(|&n| {
            let report = workloads::case2(n, NetConfig::default()).run();
            MulticastPoint {
                n,
                point_to_point: report.total_messages(),
                multicasts: report.multicasts_total(),
                predicted_multicasts: analysis::multicasts_general(n as u64, 1, (n - 1) as u64),
            }
        })
        .collect()
}

/// One row of the E14 resolver-group table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupPoint {
    /// Resolver-group size.
    pub k: u32,
    /// Executed messages.
    pub measured: u64,
    /// `(N−1)(2P+3Q+1) + (min(k,P)−1)(N−1)`.
    pub predicted: u64,
}

/// E14 — the §4.4 fault-tolerance extension: resolver groups add only a
/// constant commit factor.
#[must_use]
pub fn table_resolver_group(n: u32, p: u32, ks: &[u32]) -> Vec<GroupPoint> {
    ks.iter()
        .map(|&k| {
            let w = workloads::general(n, p, 0, NetConfig::default());
            let report = w.scenario.with_resolver_group(k).run();
            GroupPoint {
                k,
                measured: report.total_messages(),
                predicted: analysis::messages_general_grouped(n as u64, p as u64, 0, k as u64),
            }
        })
        .collect()
}

/// E15 — FIFO ablation: protocol anomalies (broken agreement,
/// incomplete raiser visibility, stuck objects) across seeds, with and
/// without the §4.2 FIFO-channel assumption. Returns
/// `(anomalies_with_fifo, anomalies_without_fifo, seeds)`.
#[must_use]
pub fn table_fifo_ablation(seeds: u64) -> (u32, u32, u64) {
    use caex_net::LatencyModel;
    let count = |fifo: bool| -> u32 {
        let mut anomalies = 0;
        for seed in 0..seeds {
            let config = NetConfig::default()
                .with_latency(LatencyModel::Uniform {
                    min: SimTime::from_micros(1),
                    max: SimTime::from_micros(5_000),
                })
                .with_seed(seed)
                .with_fifo(fifo);
            let report = workloads::case3(6, config).run();
            let broken_agreement = report.resolutions.iter().any(|r| {
                let handled: Vec<_> = report
                    .handler_starts
                    .iter()
                    .filter(|h| h.action == r.action)
                    .map(|h| h.exc.id())
                    .collect();
                handled.windows(2).any(|w| w[0] != w[1])
            });
            let incomplete = report
                .resolutions
                .first()
                .is_some_and(|r| r.raised.len() < 6);
            if !report.is_clean() || broken_agreement || incomplete {
                anomalies += 1;
            }
        }
        anomalies
    };
    (count(true), count(false), seeds)
}

/// One row of the E16 byte-volume table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BytesPoint {
    /// Participant count.
    pub n: u32,
    /// Executed messages.
    pub messages: u64,
    /// Wire bytes under the `caex::codec` encoding.
    pub wire_bytes: u64,
}

/// E16 — §2.1 "narrow bandwidth" accounting: wire bytes of the case-3
/// workload across N.
#[must_use]
pub fn table_wire_bytes(ns: &[u32]) -> Vec<BytesPoint> {
    ns.iter()
        .map(|&n| {
            let report = workloads::case3(n, NetConfig::default()).run();
            BytesPoint {
                n,
                messages: report.total_messages(),
                wire_bytes: report.wire_bytes,
            }
        })
        .collect()
}

/// One row of the E17 leave-protocol table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeavePoint {
    /// Participant count.
    pub n: u32,
    /// Messages under the centralized manager (always 0).
    pub managed: u64,
    /// Messages under the decentralized protocol.
    pub distributed: u64,
    /// The closed form `N(N−1)`.
    pub predicted: u64,
}

/// E17 — §4's "(centralized or decentralized) manager": the message
/// cost of the synchronized leave under both coordination styles, on an
/// exception-free completing action.
#[must_use]
pub fn table_leave_protocols(ns: &[u32]) -> Vec<LeavePoint> {
    use caex::LeaveMode;
    let run = |n: u32, mode: LeaveMode| -> u64 {
        let tree = Arc::new(chain_tree(1));
        let mut reg = ActionRegistry::new();
        let a = reg
            .declare(ActionScope::top_level("A", (0..n).map(NodeId::new), tree))
            .unwrap();
        let mut s = Scenario::new(Arc::new(reg))
            .with_leave_mode(mode)
            .enter_all_at(SimTime::ZERO, a);
        for i in 0..n {
            s = s.complete_at(SimTime::from_micros(10), NodeId::new(i), a);
        }
        s.run().total_messages()
    };
    ns.iter()
        .map(|&n| LeavePoint {
            n,
            managed: run(n, LeaveMode::Managed),
            distributed: run(n, LeaveMode::Distributed),
            predicted: analysis::leave_messages(n as u64),
        })
        .collect()
}

/// One row of the E18 centralized-vs-elected comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CentralPoint {
    /// Participant count.
    pub n: u32,
    /// Messages under the paper's raiser-elected resolver.
    pub elected_messages: u64,
    /// Messages under a fixed central coordinator on the same raises.
    pub central_messages: u64,
    /// Commit latency (µs) of the elected design.
    pub elected_latency_us: u64,
    /// Commit latency (µs) of the central design with a safe (1 ms)
    /// collection window.
    pub central_latency_us: u64,
    /// Whether the central design, given a *tight* (100 µs) window
    /// under jittery latency, committed an exception that fails to
    /// cover every raised one — the correctness risk a guessed window
    /// carries and the paper's ACK discipline eliminates.
    pub central_incomplete_with_tight_window: bool,
}

/// E18 — the design ablation behind the paper's decentralization: a
/// fixed coordinator needs only `O(N)` messages, but it must *guess* a
/// collection window (latency floor when safe, incomplete resolution
/// when tight) and concentrates failure in one node ([`caex::central`]
/// unit tests pin the crash behaviour). The paper's design pays
/// `O(N²)` messages for window-free exactness and no fixed role.
#[must_use]
pub fn table_central_vs_elected(ns: &[u32]) -> Vec<CentralPoint> {
    use caex::central;
    use caex_net::LatencyModel;
    ns.iter()
        .map(|&n| {
            let tree = Arc::new(chain_tree(n));
            // All non-coordinator objects raise (P = N−1): an
            // exception storm the coordinator must collect.
            let raises: Vec<_> = (1..n)
                .map(|i| (NodeId::new(i), ExceptionId::new(i)))
                .collect();
            let central = central::run(
                n,
                Arc::clone(&tree),
                NodeId::new(0),
                &raises,
                SimTime::from_millis(1),
                NetConfig::default(),
            );
            let elected = workloads::general(n, n - 1, 0, NetConfig::default()).run();
            let elected_latency_us = elected.resolutions.first().map_or(0, |r| r.at.as_micros());

            // Tight window + jitter: does the central commit cover all?
            let jittery = NetConfig::default().with_latency(LatencyModel::Uniform {
                min: SimTime::from_micros(20),
                max: SimTime::from_millis(2),
            });
            let tight = central::run(
                n,
                Arc::clone(&tree),
                NodeId::new(0),
                &raises,
                SimTime::from_micros(100),
                jittery,
            );
            let incomplete = tight.committed.is_some_and(|committed| {
                raises
                    .iter()
                    .any(|&(_, exc)| !tree.is_ancestor(committed, exc).unwrap())
            });
            CentralPoint {
                n,
                elected_messages: elected.total_messages(),
                central_messages: central.total_messages(),
                elected_latency_us,
                central_latency_us: central.finished_at.as_micros(),
                central_incomplete_with_tight_window: incomplete,
            }
        })
        .collect()
}

/// Wall-clock comparison row: the threaded runtime resolving the same
/// workload as the simulator (sanity demonstration, not a paper table).
#[must_use]
pub fn threaded_smoke(n: u32) -> usize {
    let tree = Arc::new(chain_tree(2));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "smoke",
            (0..n).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .unwrap();
    let report = ThreadRunner::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a1)
        .raise_at(
            SimTime::from_millis(1),
            NodeId::new(0),
            Exception::new(ExceptionId::new(1)),
        )
        .run();
    report.handled_exceptions(a1).len()
}

/// Renders rows as an aligned text table.
#[must_use]
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = format!("\n## {title}\n\n");
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:>w$} |"));
        }
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&format!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    ));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_tables_are_exact() {
        for p in table_case1(&[2, 5, 9]) {
            assert!(p.exact(), "{p:?}");
        }
        for p in table_case2(&[2, 5, 9]) {
            assert!(p.exact(), "{p:?}");
        }
        for p in table_case3(&[2, 5, 9]) {
            assert!(p.exact(), "{p:?}");
        }
    }

    #[test]
    fn general_grid_is_exact() {
        for row in table_general_grid(6) {
            assert_eq!(row.measured, row.predicted, "{row:?}");
        }
    }

    #[test]
    fn cr_loses_and_gap_widens() {
        let rows = table_cr_vs_new(&[4, 8, 16]);
        for w in rows.windows(2) {
            assert!(w[0].ratio() >= 1.0, "CR must not beat the new algorithm");
            assert!(
                w[1].ratio() > w[0].ratio(),
                "the gap must widen with N: {rows:?}"
            );
        }
    }

    #[test]
    fn domino_grows_linearly_with_chain() {
        let rows = table_domino(&[4, 8, 16]);
        for row in &rows {
            assert!(row.cr_raised >= row.chain_len, "{row:?}");
            assert_eq!(row.new_raised, 1);
        }
    }

    #[test]
    fn wait_strategy_latency_grows_and_deadlocks() {
        let rows = table_strategies(&[100, 10_000], 50);
        // Abort latency is flat; wait latency tracks the nested action.
        assert!(rows[0].abort_commit_us.abs_diff(rows[1].abort_commit_us) < 10);
        assert!(rows[1].wait_commit_us.unwrap() > rows[0].wait_commit_us.unwrap());
        // Belated row deadlocks under wait, commits under abort.
        let belated = rows.last().unwrap();
        assert!(belated.wait_commit_us.is_none());
        assert!(belated.abort_commit_us > 0);
    }

    #[test]
    fn abort_delay_scales_with_depth_times_cost() {
        let rows = table_abort_depth(&[0, 2, 4], 1_000);
        assert!(rows[1].commit_us >= rows[0].commit_us + 2_000);
        assert!(rows[2].commit_us >= rows[1].commit_us + 2_000);
    }

    #[test]
    fn no_overhead_rows_are_zero() {
        for (n, messages) in table_no_overhead(&[2, 8, 32]) {
            assert_eq!(messages, 0, "N={n}");
        }
    }

    #[test]
    fn examples_table_matches_paper() {
        let rows = table_examples();
        assert_eq!(rows[0].1, NodeId::new(2), "O2 resolves Example 1");
        assert_eq!(rows[1].1, NodeId::new(2), "O2 resolves Example 2");
    }

    #[test]
    fn threaded_smoke_handles_everywhere() {
        assert_eq!(threaded_smoke(3), 3);
    }

    #[test]
    fn multicast_table_is_exact_and_flat() {
        let rows = table_multicast(&[4, 8, 16]);
        for row in &rows {
            assert_eq!(row.multicasts, row.predicted_multicasts, "{row:?}");
            assert!(row.point_to_point > row.multicasts);
        }
    }

    #[test]
    fn resolver_group_table_is_exact() {
        for row in table_resolver_group(8, 3, &[1, 2, 3, 5]) {
            assert_eq!(row.measured, row.predicted, "{row:?}");
        }
    }

    #[test]
    fn fifo_ablation_separates_regimes() {
        let (with_fifo, without_fifo, _) = table_fifo_ablation(25);
        assert_eq!(with_fifo, 0);
        assert!(without_fifo > 0);
    }

    #[test]
    fn central_uses_fewer_messages_but_more_latency() {
        let rows = table_central_vs_elected(&[4, 8, 16]);
        for row in &rows {
            assert!(row.central_messages < row.elected_messages, "{row:?}");
            assert!(
                row.central_latency_us >= 1_000,
                "the window floors central latency: {row:?}"
            );
        }
        // The message gap widens: elected is quadratic, central linear.
        let gap = |r: &CentralPoint| r.elected_messages as f64 / r.central_messages as f64;
        assert!(gap(&rows[2]) > gap(&rows[0]));
    }

    #[test]
    fn tight_window_eventually_misses_raisers() {
        // Across the sweep, at least one configuration must exhibit the
        // incomplete-resolution hazard.
        let rows = table_central_vs_elected(&[8, 16, 24]);
        assert!(
            rows.iter().any(|r| r.central_incomplete_with_tight_window),
            "{rows:?}"
        );
    }

    #[test]
    fn leave_table_matches_formula() {
        for row in table_leave_protocols(&[2, 4, 8]) {
            assert_eq!(row.managed, 0, "{row:?}");
            assert_eq!(row.distributed, row.predicted, "{row:?}");
        }
    }

    #[test]
    fn wire_bytes_scale_with_messages() {
        let rows = table_wire_bytes(&[4, 16]);
        for row in &rows {
            // Every message is at least the 9-byte ACK.
            assert!(row.wire_bytes >= 9 * row.messages, "{row:?}");
        }
        assert!(rows[1].wire_bytes > rows[0].wire_bytes);
    }

    #[test]
    fn render_table_aligns() {
        let s = render_table(
            "T",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["10".into(), "20".into()]],
        );
        assert!(s.contains("## T"));
        assert!(s.lines().count() >= 5);
    }
}
