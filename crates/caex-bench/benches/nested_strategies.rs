//! Criterion bench for E9 (Fig. 1): abort-nested vs wait-for-nested
//! strategies across nested-action remaining durations.

use caex_bench::table_strategies;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("nested_strategies");
    for remaining in [0u64, 1_000, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("wait_vs_abort", remaining),
            &remaining,
            |b, &remaining| {
                b.iter(|| black_box(table_strategies(&[remaining], 50)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
