//! Microbenches of the substrates: exception-tree resolution, the
//! discrete-event network, and the atomic-object store. These are not
//! paper tables; they bound the measurement overhead of the harness
//! itself.

use caex_net::{NetConfig, NodeId, SimNet};
use caex_tree::{balanced_tree, chain_tree, ExceptionId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_tree_resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_resolve");
    for depth in [4u32, 8, 16] {
        let tree = balanced_tree(2, depth.min(12));
        let leaves = tree.leaves();
        let raised: Vec<ExceptionId> = leaves.iter().copied().take(16).collect();
        group.bench_with_input(
            BenchmarkId::new("balanced_16_leaves", depth),
            &depth,
            |b, _| {
                b.iter(|| black_box(tree.resolve(raised.iter().copied()).unwrap()));
            },
        );
    }
    let chain = chain_tree(1024);
    group.bench_function("chain_1024_extremes", |b| {
        b.iter(|| {
            black_box(
                chain
                    .resolve([ExceptionId::new(1), ExceptionId::new(1024)])
                    .unwrap(),
            )
        });
    });
    group.finish();
}

fn bench_simnet(c: &mut Criterion) {
    let mut group = c.benchmark_group("simnet");
    for msgs in [1_000u32, 10_000] {
        group.bench_with_input(BenchmarkId::new("send_deliver", msgs), &msgs, |b, &msgs| {
            b.iter(|| {
                let mut net: SimNet<&'static str> = SimNet::new(NetConfig::default(), 8);
                for i in 0..msgs {
                    net.send(NodeId::new(i % 8), NodeId::new((i + 1) % 8), "payload");
                }
                let mut count = 0u32;
                while net.next_delivery().is_some() {
                    count += 1;
                }
                black_box(count)
            });
        });
    }
    group.finish();
}

fn bench_store(c: &mut Criterion) {
    use caex_action::atomic::Store;
    let mut group = c.benchmark_group("atomic_store");
    group.bench_function("txn_write_commit", |b| {
        b.iter(|| {
            let mut store: Store<u64> = Store::new();
            let obj = store.define("x", 0);
            for i in 0..100 {
                let t = store.begin_top_level();
                store.write(t, obj, i).unwrap();
                store.commit(t).unwrap();
            }
            black_box(store.committed(obj))
        });
    });
    group.bench_function("nested_txn_depth_8", |b| {
        b.iter(|| {
            let mut store: Store<u64> = Store::new();
            let obj = store.define("x", 0);
            let mut txns = vec![store.begin_top_level()];
            for _ in 0..7 {
                let child = store.begin_nested(*txns.last().unwrap()).unwrap();
                txns.push(child);
            }
            store.write(*txns.last().unwrap(), obj, 9).unwrap();
            for t in txns.into_iter().rev() {
                store.commit(t).unwrap();
            }
            black_box(store.committed(obj))
        });
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    use caex::codec;
    use caex::Msg;
    use caex_action::ActionId;
    use caex_tree::{Exception, ExceptionId, Severity};

    let mut group = c.benchmark_group("codec");
    let rich = Msg::Exception {
        action: ActionId::new(3),
        from: NodeId::new(7),
        exc: Exception::new(ExceptionId::new(42))
            .with_severity(Severity::Serious)
            .with_origin("pressure sensor 9")
            .with_detail("reading outside calibrated envelope"),
    };
    let ack = Msg::Ack {
        from: NodeId::new(1),
        action: ActionId::new(3),
    };
    group.bench_function("encode_rich_exception", |b| {
        b.iter(|| black_box(codec::encode(&rich)));
    });
    group.bench_function("encode_ack", |b| {
        b.iter(|| black_box(codec::encode(&ack)));
    });
    let rich_bytes = codec::encode(&rich);
    group.bench_function("decode_rich_exception", |b| {
        b.iter(|| black_box(codec::decode(&rich_bytes).unwrap()));
    });
    group.finish();
}

fn bench_central(c: &mut Criterion) {
    use caex::central;
    use caex_tree::{chain_tree as chain, ExceptionId};
    use std::sync::Arc;

    let mut group = c.benchmark_group("central_coordinator");
    for n in [8u32, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let tree = Arc::new(chain(n));
            let raises: Vec<_> = (1..n)
                .map(|i| (NodeId::new(i), ExceptionId::new(i)))
                .collect();
            b.iter(|| {
                let report = central::run(
                    n,
                    Arc::clone(&tree),
                    NodeId::new(0),
                    &raises,
                    caex_net::SimTime::from_millis(1),
                    NetConfig::default(),
                );
                black_box(report.total_messages())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tree_resolution,
    bench_simnet,
    bench_store,
    bench_codec,
    bench_central
);
criterion_main!(benches);
