//! Criterion bench for E11: resolution cost versus nesting depth
//! (abortion handlers execute innermost-first; §4.4 notes the protocol
//! "may suffer some delays because of the execution of abortion
//! handlers in nested actions").

use caex_bench::table_abort_depth;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_abort_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("abort_depth");
    for depth in [0u32, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| black_box(table_abort_depth(&[depth], 1_000)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_abort_depth);
criterion_main!(benches);
