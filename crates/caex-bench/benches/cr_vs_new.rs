//! Criterion bench for E5: the new algorithm against the
//! Campbell–Randell baseline on matched worst cases. Message counts are
//! printed by the `tables` binary; this bench times the executions.

use caex::{cr, workloads};
use caex_net::{NetConfig, NodeId};
use caex_tree::{chain_tree, ExceptionId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_cr_vs_new(c: &mut Criterion) {
    let mut group = c.benchmark_group("cr_vs_new");
    for n in [4u32, 8, 16] {
        group.bench_with_input(BenchmarkId::new("new_all_raise", n), &n, |b, &n| {
            b.iter(|| {
                let report = workloads::case3(n, NetConfig::default()).run();
                black_box(report.total_messages())
            });
        });
        group.bench_with_input(BenchmarkId::new("cr_domino", n), &n, |b, &n| {
            b.iter(|| {
                let len = 2 * n;
                let tree = Arc::new(chain_tree(len));
                let reduced = cr::interleaved_parties(&tree, len, n);
                let report = cr::run(
                    n,
                    tree,
                    reduced,
                    &[(NodeId::new(0), ExceptionId::new(len))],
                    NetConfig::default(),
                );
                black_box(report.total_messages())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cr_vs_new);
criterion_main!(benches);
