//! Criterion bench for E1–E3: end-to-end resolution of the three §4.4
//! cases across N. The interesting output is the scaling shape (the
//! simulator makes message counts exact; wall time tracks them).

use caex::workloads;
use caex_net::NetConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_cases(c: &mut Criterion) {
    let mut group = c.benchmark_group("resolution");
    for n in [4u32, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::new("case1_one_exception", n), &n, |b, &n| {
            b.iter(|| {
                let report = workloads::case1(n, NetConfig::default()).run();
                black_box(report.total_messages())
            });
        });
        group.bench_with_input(BenchmarkId::new("case2_all_nested", n), &n, |b, &n| {
            b.iter(|| {
                let report = workloads::case2(n, NetConfig::default()).run();
                black_box(report.total_messages())
            });
        });
        group.bench_with_input(BenchmarkId::new("case3_all_raise", n), &n, |b, &n| {
            b.iter(|| {
                let report = workloads::case3(n, NetConfig::default()).run();
                black_box(report.total_messages())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cases);
criterion_main!(benches);
