//! Transport benches: the wire frame codec's throughput, and the §4.2
//! resolution latency of the real-socket transport against the
//! in-process threaded runtime for the same (n, p, q) = (3, 1, 0)
//! workload. Not a paper table — it prices what crossing a real
//! socket costs over crossing a channel.

use caex::thread_engine::ThreadRunner;
use caex::Msg;
use caex_action::{ActionId, ActionRegistry, ActionScope};
use caex_net::{NodeId, SimTime};
use caex_tree::{chain_tree, Exception, ExceptionId, Severity};
use caex_wire::frame::{decode_frame, encode_frame, Frame};
use caex_wire::harness::{run_local, Transport};
use caex_wire::WireConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn rich_msg_frame() -> Frame {
    Frame::Msg {
        from: NodeId::new(7),
        sent_us: 0,
        msg: Msg::Exception {
            action: ActionId::new(3),
            from: NodeId::new(7),
            exc: Exception::new(ExceptionId::new(42))
                .with_severity(Severity::Serious)
                .with_origin("pressure sensor 9")
                .with_detail("reading outside calibrated envelope"),
        },
    }
}

fn bench_frame_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_frame");
    let rich = rich_msg_frame();
    group.bench_function("encode_rich_msg", |b| {
        b.iter(|| black_box(encode_frame(black_box(&rich))));
    });
    group.bench_function("encode_heartbeat", |b| {
        b.iter(|| black_box(encode_frame(black_box(&Frame::Heartbeat))));
    });
    let rich_bytes = encode_frame(&rich);
    group.bench_function("decode_rich_msg", |b| {
        b.iter(|| black_box(decode_frame(black_box(&rich_bytes)).unwrap()));
    });
    group.finish();
}

/// The threaded engine resolving one raise among three participants —
/// the in-process baseline the socket transport is compared against.
fn threaded_resolution() -> usize {
    let tree = Arc::new(chain_tree(2));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "bench",
            (0..3).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .unwrap();
    let report = ThreadRunner::new(Arc::new(reg))
        .with_idle_timeout(Duration::from_millis(50))
        .enter_all_at(SimTime::ZERO, a1)
        .raise_at(SimTime::ZERO, NodeId::new(0), Exception::new(ExceptionId::new(1)))
        .run();
    report.handled_exceptions(a1).len()
}

fn bench_resolution_latency(c: &mut Criterion) {
    // Whole-resolution runs are hundreds of milliseconds (dominated by
    // the quiescence timeout); the harness's calibration settles on one
    // iteration per sample for these.
    let mut group = c.benchmark_group("resolution_latency");

    group.bench_function("threads_channels_n3", |b| {
        b.iter(|| black_box(threaded_resolution()));
    });

    let sock_dir = std::env::temp_dir().join(format!("caex-wire-bench-{}", std::process::id()));
    std::fs::create_dir_all(&sock_dir).expect("bench scratch dir");
    let config = WireConfig::default();
    let idle = Duration::from_millis(100);
    group.bench_function("threads_tcp_sockets_n3", |b| {
        b.iter(|| {
            black_box(
                run_local("general:3,1,0", Transport::Tcp, &sock_dir, &config, idle)
                    .expect("wire run over TCP"),
            )
        });
    });
    group.bench_function("threads_unix_sockets_n3", |b| {
        b.iter(|| {
            black_box(
                run_local("general:3,1,0", Transport::Unix, &sock_dir, &config, idle)
                    .expect("wire run over Unix sockets"),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_frame_codec, bench_resolution_latency);
criterion_main!(benches);
