//! Pins the checked-in `BENCH_PR2.json` to a live regeneration: the
//! observability suite is virtual-time-deterministic, so the document
//! at the repository root must match what the code produces today.

use caex_bench::obs_bench::{bench_pr2, bench_pr2_json, validate_bench_pr2};
use caex_obs::JsonValue;

fn checked_in() -> JsonValue {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR2.json");
    let text = std::fs::read_to_string(path).expect("BENCH_PR2.json exists at the repo root");
    caex_obs::json::parse(&text).expect("BENCH_PR2.json parses")
}

#[test]
fn checked_in_bench_json_validates() {
    assert_eq!(validate_bench_pr2(&checked_in()), Ok(7));
}

#[test]
fn checked_in_bench_json_matches_live_regeneration() {
    let live = bench_pr2_json(&bench_pr2());
    assert_eq!(
        checked_in(),
        live,
        "BENCH_PR2.json is stale — regenerate with \
         `cargo run -p caex-bench --bin tables -- --bench-json BENCH_PR2.json`"
    );
}
