//! Pins the checked-in `BENCH_PR7.json` to a live regeneration: the
//! causal-analysis suite is virtual-time-deterministic, so the
//! critical-path and latency numbers at the repository root must match
//! what the code produces today.

use caex_bench::causal_bench::{bench_pr7, bench_pr7_json, validate_bench_pr7};
use caex_obs::JsonValue;

fn checked_in() -> JsonValue {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR7.json");
    let text = std::fs::read_to_string(path).expect("BENCH_PR7.json exists at the repo root");
    caex_obs::json::parse(&text).expect("BENCH_PR7.json parses")
}

#[test]
fn checked_in_causal_json_validates() {
    assert_eq!(validate_bench_pr7(&checked_in()), Ok(4));
}

#[test]
fn checked_in_causal_json_matches_live_regeneration() {
    let live = bench_pr7_json(&bench_pr7());
    assert_eq!(
        checked_in(),
        live,
        "BENCH_PR7.json is stale — regenerate with \
         `cargo run -p caex-bench --bin tables -- --causal-json BENCH_PR7.json`"
    );
}
