//! In-process tests for the socket transport: FIFO delivery across a
//! real TCP link, whole-scenario runs over loopback TCP and Unix
//! sockets, and the heartbeat failure detector distinguishing a silent
//! crash from a graceful goodbye.

use caex::{Event, Msg};
use caex_action::ActionId;
use caex_net::{FifoPort, NodeId};
use caex_tree::{Exception, ExceptionId};
use caex_wire::frame::{write_frame, Frame};
use caex_wire::harness::{run_local, Transport};
use caex_wire::scenario::WireScenario;
use caex_wire::{WireAddr, WireBound, WireConfig, WirePort};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

/// A unique scratch directory per test, for Unix-domain socket files.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("caex-wire-test-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn tcp_any() -> WireAddr {
    "tcp://127.0.0.1:0".parse().expect("loopback wildcard")
}

/// Forms a full n-node TCP mesh in-process and returns the ports.
fn tcp_mesh(n: u32, config: &WireConfig) -> Vec<WirePort> {
    let bounds: Vec<WireBound> = (0..n)
        .map(|i| {
            WireBound::bind(NodeId::new(i), &tcp_any(), config.clone()).expect("bind loopback")
        })
        .collect();
    let addrs: Vec<WireAddr> = bounds.iter().map(|b| b.local_addr().clone()).collect();
    bounds
        .into_iter()
        .map(|b| b.connect(&addrs).expect("form mesh"))
        .collect()
}

#[test]
fn two_node_tcp_link_preserves_fifo_order() {
    let ports = tcp_mesh(2, &WireConfig::default());
    // No barrier: it synchronizes *threads*, one per node, and this
    // test drives both ports from one thread. Sends buffer regardless.
    let (sender, receiver) = (&ports[0], &ports[1]);

    // A burst of protocol messages tagged by action id; FIFO order
    // means they must arrive exactly in send order.
    for i in 0..50u32 {
        let msg = Msg::Ack { from: sender.id(), action: ActionId::new(i) };
        assert!(sender.send(receiver.id(), Event::Msg(msg)), "send {i} accepted");
    }
    for i in 0..50u32 {
        let (from, event) = receiver
            .recv_timeout(Duration::from_secs(5))
            .expect("burst message arrives");
        assert_eq!(from, sender.id());
        match event {
            Event::Msg(Msg::Ack { action, .. }) => assert_eq!(action, ActionId::new(i)),
            other => panic!("expected Ack #{i}, got {other:?}"),
        }
    }
}

#[test]
fn local_events_never_cross_the_wire() {
    let ports = tcp_mesh(2, &WireConfig::default());
    // A non-Msg event addressed to a peer is refused and accounted as
    // a drop, not silently serialized.
    let exc = Exception::new(ExceptionId::new(1));
    let refused = ports[0].send(NodeId::new(1), Event::Raise(exc));
    assert!(!refused);
    assert_eq!(ports[0].stats().lock().dropped_total(), 1);
}

#[test]
fn example1_over_loopback_tcp_matches_the_simulator() {
    let outcome = run_local(
        "example1",
        Transport::Tcp,
        &scratch("tcp-ex1"),
        &WireConfig::default(),
        Duration::from_millis(300),
    )
    .expect("example1 runs over TCP");
    let baseline = WireScenario::sim_baseline("example1").expect("sim oracle");
    assert_eq!(outcome.total_sent, baseline.total_messages, "§4.4: (N−1)(2P+3Q+1) = 10");
    assert_eq!(outcome.resolved, baseline.agreed);
    assert!(outcome.resolved.is_some(), "resolution must have committed");
}

#[test]
fn example1_over_unix_sockets_matches_the_simulator() {
    let outcome = run_local(
        "example1",
        Transport::Unix,
        &scratch("uds-ex1"),
        &WireConfig::default(),
        Duration::from_millis(300),
    )
    .expect("example1 runs over Unix sockets");
    let baseline = WireScenario::sim_baseline("example1").expect("sim oracle");
    assert_eq!(outcome.total_sent, baseline.total_messages);
    assert_eq!(outcome.resolved, baseline.agreed);
}

/// Short liveness clocks so the silence tests finish fast: 30ms
/// heartbeats with the legacy alias mapping 150ms of silence to the
/// confirm threshold (φ ≈ 2.17 at the empty-history floor).
fn twitchy_config() -> WireConfig {
    WireConfig { heartbeat_interval: Duration::from_millis(30), ..WireConfig::default() }
        .with_crash_timeout(Duration::from_millis(150))
}

/// A fake peer occupying node id 1: a raw listener (so the port under
/// test can dial out) plus a raw inbound stream that has said Hello.
/// Returns the port and the fake's inbound stream.
fn port_with_fake_peer(config: &WireConfig) -> (WirePort, TcpStream) {
    let fake_listener = TcpListener::bind("127.0.0.1:0").expect("fake listener");
    let fake_addr = WireAddr::Tcp(fake_listener.local_addr().expect("fake addr"));
    let bound = WireBound::bind(NodeId::new(0), &tcp_any(), config.clone()).expect("bind");
    let real_addr = bound.local_addr().clone();
    let port = bound.connect(&[real_addr.clone(), fake_addr]).expect("mesh");
    let WireAddr::Tcp(real_sock) = real_addr else { unreachable!("bound tcp") };
    let mut inbound = TcpStream::connect(real_sock).expect("fake dials in");
    write_frame(&mut inbound, &Frame::Hello { id: NodeId::new(1), incarnation: 0 })
        .expect("fake hello");
    (port, inbound)
}

/// Polls `take_crashed` until `deadline`, accumulating reports.
fn poll_crashed(port: &WirePort, deadline: Duration) -> Vec<NodeId> {
    let until = Instant::now() + deadline;
    let mut crashed = Vec::new();
    while Instant::now() < until {
        crashed.extend(port.take_crashed());
        if !crashed.is_empty() {
            break;
        }
        thread::sleep(Duration::from_millis(10));
    }
    crashed
}

#[test]
fn silent_peer_is_detected_by_heartbeat_timeout() {
    let config = twitchy_config();
    let (port, _inbound) = port_with_fake_peer(&config);
    // The fake said Hello and then went silent: no heartbeats, no Bye.
    let crashed = poll_crashed(&port, Duration::from_secs(5));
    assert_eq!(crashed, vec![NodeId::new(1)], "silence past the confirm threshold is a crash");
    // Exactly-once reporting: the same peer never surfaces again.
    thread::sleep(Duration::from_millis(200));
    assert!(port.take_crashed().is_empty());
}

#[test]
fn goodbye_is_a_departure_not_a_crash() {
    let config = twitchy_config();
    let (port, mut inbound) = port_with_fake_peer(&config);
    write_frame(&mut inbound, &Frame::Bye).expect("fake bye");
    drop(inbound); // close the socket — with a Bye first, this is graceful
    thread::sleep(Duration::from_millis(450));
    assert!(
        port.take_crashed().is_empty(),
        "a peer that says Bye must never be reported crashed"
    );
}

#[test]
fn abrupt_disconnect_without_bye_is_a_crash() {
    let config = twitchy_config();
    let (port, inbound) = port_with_fake_peer(&config);
    drop(inbound); // EOF with no Bye: the link died
    let crashed = poll_crashed(&port, Duration::from_secs(5));
    assert_eq!(crashed, vec![NodeId::new(1)]);
}

/// The two-stage detector: a latency spike long enough to cross the
/// *suspect* threshold but healed before the *confirm* threshold
/// surfaces through `take_suspected` / `take_rejoined`, never through
/// `take_crashed`.
#[test]
fn latency_spike_is_suspected_then_rejoined_not_crashed() {
    let config = twitchy_config();
    let (port, mut inbound) = port_with_fake_peer(&config);
    // φ crosses the suspect threshold (1.0) at ~69ms of silence at the
    // empty-history floor; the confirm threshold needs ~150ms.
    thread::sleep(Duration::from_millis(100));
    let suspected = port.take_suspected();
    assert_eq!(suspected, vec![NodeId::new(1)], "a 100ms spike must raise suspicion");
    assert!(port.take_crashed().is_empty(), "suspicion alone must never confirm");

    // The spike heals: one heartbeat clears φ back below the bar.
    write_frame(&mut inbound, &Frame::Heartbeat).expect("fake heartbeat");
    let until = Instant::now() + Duration::from_secs(5);
    let mut rejoined = Vec::new();
    while Instant::now() < until && rejoined.is_empty() {
        rejoined = port.take_rejoined();
        thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(rejoined, vec![NodeId::new(1)], "a healed spike must surface as a rejoin");
    assert!(port.take_crashed().is_empty(), "the flap must never be reported as a crash");
    assert!(
        port.stats().lock().recovery_of_kind("suspicion_flap") >= 1,
        "the flap must be accounted in NetStats"
    );
}
