//! Multi-process integration: one OS process per participant, real
//! sockets between them, the simulator as oracle. Examples 1 and 2
//! must resolve to the simulator's exception with the simulator's
//! message count, and a participant killed mid-resolution must surface
//! as a deserter via heartbeat timeout while resolution still
//! completes among the survivors.

use caex_net::NodeId;
use caex_wire::harness::{run_coordinator, CoordinatorOptions, CrashMode, Transport};
use caex_wire::scenario::WireScenario;
use std::path::PathBuf;

fn wire_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_caex-wire"))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("caex-wire-mp-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn example1_across_processes_matches_the_law_and_the_simulator() {
    let summary = run_coordinator(&CoordinatorOptions::new("example1", wire_binary()))
        .expect("coordinated run");
    assert!(summary.ok(), "failures: {:?}", summary.failures);
    assert_eq!(summary.total_sent, 10, "§4.4: (N−1)(2P+3Q+1) over real sockets");
    assert_eq!(summary.expected_messages, Some(10));
    assert_eq!(summary.sim_messages, 10);
    let baseline = WireScenario::sim_baseline("example1").expect("sim oracle");
    assert_eq!(summary.resolved, baseline.agreed.map(|e| e.index()));
    assert!(summary.deserters.is_empty());
}

#[test]
fn example1_across_processes_over_unix_sockets() {
    let mut opts = CoordinatorOptions::new("example1", wire_binary());
    opts.transport = Transport::Unix;
    opts.sock_dir = scratch("uds");
    let summary = run_coordinator(&opts).expect("coordinated run");
    assert!(summary.ok(), "failures: {:?}", summary.failures);
    assert_eq!(summary.total_sent, 10);
}

#[test]
fn example2_across_processes_matches_the_simulator() {
    let summary = run_coordinator(&CoordinatorOptions::new("example2", wire_binary()))
        .expect("coordinated run");
    assert!(summary.ok(), "failures: {:?}", summary.failures);
    // Example 2's cross-level run has no closed form; the simulator's
    // count is the oracle, and the coordinator already asserts it.
    assert_eq!(summary.expected_messages, None);
    assert_eq!(summary.total_sent, summary.sim_messages);
    let baseline = WireScenario::sim_baseline("example2").expect("sim oracle");
    assert_eq!(summary.resolved, baseline.agreed.map(|e| e.index()));
}

#[test]
fn general_grid_cell_across_processes_holds_the_law() {
    let summary = run_coordinator(&CoordinatorOptions::new("general:4,2,1", wire_binary()))
        .expect("coordinated run");
    assert!(summary.ok(), "failures: {:?}", summary.failures);
    assert_eq!(summary.expected_messages, Some(summary.total_sent));
}

fn crash_run(mode: CrashMode, tag: &str) {
    let victim = NodeId::new(3);
    let opts = CoordinatorOptions::new("example1", wire_binary()).with_crash(victim, mode);
    let summary = run_coordinator(&opts).expect("coordinated crash run");
    assert!(summary.ok(), "[{tag}] failures: {:?}", summary.failures);
    assert_eq!(
        summary.deserters,
        vec![victim.index()],
        "[{tag}] the killed participant must surface as a deserter"
    );
    let baseline = WireScenario::sim_baseline("example1").expect("sim oracle");
    assert_eq!(
        summary.resolved,
        baseline.agreed.map(|e| e.index()),
        "[{tag}] resolution must still complete among the survivors"
    );
}

#[test]
fn killed_participant_becomes_a_deserter_and_resolution_completes() {
    crash_run(CrashMode::Exit, "exit");
}

#[test]
fn frozen_participant_is_detected_by_heartbeat_timeout() {
    // SIGSTOP freezes the victim without closing its sockets — only
    // the heartbeat timeout can catch this one.
    crash_run(CrashMode::Stop, "stop");
}

#[test]
fn transient_partition_heals_with_full_agreement_and_zero_deserters() {
    // Node 3 SIGSTOPs itself right after the barrier and is SIGCONTed
    // by the coordinator after a full second — well past the old fixed
    // 700ms crash timeout that would have amputated it. The phi
    // detector (tuned by `with_partition` so the outage only reaches
    // the *suspect* stage) must ride out the outage: the run is
    // assessed as a clean run, so the §4.4 message law, the exactly-one
    // -handler-per-participant check, and the zero-deserter check all
    // apply to the healed mesh.
    let opts = CoordinatorOptions::new("example1", wire_binary())
        .with_partition(NodeId::new(3), std::time::Duration::from_millis(1000));
    let summary = run_coordinator(&opts).expect("coordinated partition run");
    assert!(summary.ok(), "failures: {:?}", summary.failures);
    assert_eq!(summary.total_sent, 10, "§4.4 law must hold across the healed partition");
    assert!(
        summary.deserters.is_empty(),
        "a healed partition must never surface a deserter: {:?}",
        summary.deserters
    );
    let baseline = WireScenario::sim_baseline("example1").expect("sim oracle");
    assert_eq!(summary.resolved, baseline.agreed.map(|e| e.index()));
}

#[test]
fn resolver_killed_at_the_commit_point_fails_over() {
    // Node 2 is Example 1's max raiser, hence the elected §4.2
    // resolver. A commit-point crash kills it after it has collected
    // every ACK but before a single Commit reaches a peer: the
    // survivors hold the victim's exception only as a ghost entry and
    // must re-elect node 1, re-resolve over the full raised set, and
    // commit the same exception the dead resolver would have.
    let victim = NodeId::new(2);
    let opts = CoordinatorOptions::new("example1", wire_binary())
        .with_crash(victim, CrashMode::Exit)
        .at_commit_point();
    let summary = run_coordinator(&opts).expect("coordinated crash run");
    assert!(summary.ok(), "failures: {:?}", summary.failures);
    assert_eq!(summary.deserters, vec![victim.index()]);
    let baseline = WireScenario::sim_baseline("example1").expect("sim oracle");
    assert_eq!(
        summary.resolved,
        baseline.agreed.map(|e| e.index()),
        "failover must commit the exception the dead resolver would have"
    );
}

#[test]
fn zombie_resolver_resumed_after_reelection_cannot_split_the_decision() {
    // The stop-mode victim freezes *inside* its commit step, holding
    // unsent Commit messages. Long after the survivors have deserted
    // it, re-elected, and committed, SIGCONT wakes the zombie and its
    // stale Commits finally hit the wire — the survivors' deserter
    // fence must discard them, and the agreement check (which includes
    // the zombie's own report) must still see exactly one exception.
    let victim = NodeId::new(2);
    let opts = CoordinatorOptions::new("example1", wire_binary())
        .with_crash(victim, CrashMode::Stop)
        .at_commit_point()
        .resuming_after(std::time::Duration::from_millis(800));
    let summary = run_coordinator(&opts).expect("coordinated zombie run");
    assert!(summary.ok(), "failures: {:?}", summary.failures);
    assert_eq!(summary.deserters, vec![victim.index()]);
    let baseline = WireScenario::sim_baseline("example1").expect("sim oracle");
    assert_eq!(summary.resolved, baseline.agreed.map(|e| e.index()));
    // The zombie finished its drive loop and reported: its own handler
    // ran on the same exception (it committed locally before
    // freezing), so a split decision would have tripped the
    // agreement failure above.
    let zombie = summary
        .reports
        .iter()
        .find(|r| r.id == victim.index())
        .expect("resumed victim prints a report");
    assert!(
        zombie
            .handled
            .iter()
            .any(|(_, e)| Some(*e) == summary.resolved),
        "zombie handled {:?}, run resolved {:?}",
        zombie.handled,
        summary.resolved
    );
}
