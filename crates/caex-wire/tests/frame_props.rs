//! Property battery for the wire frame codec: random protocol
//! messages round-trip bit-exactly; random corruption — flipped bytes,
//! truncation at every cut, bogus versions, hostile length prefixes,
//! raw byte soup — fails *cleanly*, never panics, never allocates from
//! an attacker-controlled length.

use caex::Msg;
use caex_action::ActionId;
use caex_net::NodeId;
use caex_tree::{Exception, ExceptionId, Severity};
use caex_wire::frame::{
    decode_frame, encode_frame, read_frame, Frame, FrameError, MAX_PAYLOAD, VERSION,
};
use proptest::prelude::*;

/// Printable-plus-multibyte palette, so origin/detail strings exercise
/// UTF-8 boundaries without inventing a full string strategy.
const PALETTE: &[&str] = &["a", "B", "7", " ", "_", "é", "λ", "中", "🦀", "\n", "\""];

fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..PALETTE.len(), 0..24)
        .prop_map(|ix| ix.into_iter().map(|i| PALETTE[i]).collect())
}

fn arb_exception() -> impl Strategy<Value = Exception> {
    (
        any::<u32>(),
        0u8..3,
        prop::option::of(arb_string()),
        prop::option::of(arb_string()),
    )
        .prop_map(|(id, sev, origin, detail)| {
            let severity = match sev {
                0 => Severity::Recoverable,
                1 => Severity::Serious,
                _ => Severity::Fatal,
            };
            let mut exc = Exception::new(ExceptionId::new(id)).with_severity(severity);
            if let Some(o) = origin {
                exc = exc.with_origin(o);
            }
            if let Some(d) = detail {
                exc = exc.with_detail(d);
            }
            exc
        })
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    let action = any::<u32>().prop_map(ActionId::new);
    let node = any::<u32>().prop_map(NodeId::new);
    prop_oneof![
        (action.boxed(), node.boxed(), arb_exception().boxed()).prop_map(
            |(action, from, exc)| Msg::Exception { action, from, exc }
        ),
        (any::<u32>(), any::<u32>())
            .prop_map(|(f, a)| Msg::HaveNested { from: NodeId::new(f), action: ActionId::new(a) }),
        (any::<u32>(), any::<u32>(), prop::option::of(arb_exception())).prop_map(
            |(a, f, exc)| Msg::NestedCompleted {
                action: ActionId::new(a),
                from: NodeId::new(f),
                exc,
            }
        ),
        (any::<u32>(), any::<u32>())
            .prop_map(|(f, a)| Msg::Ack { from: NodeId::new(f), action: ActionId::new(a) }),
        (any::<u32>(), any::<u32>(), arb_exception()).prop_map(|(a, f, exc)| Msg::Commit {
            action: ActionId::new(a),
            from: NodeId::new(f),
            exc,
        }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(f, a)| Msg::LeaveReady { from: NodeId::new(f), action: ActionId::new(a) }),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u32>(), any::<u32>())
            .prop_map(|(id, incarnation)| Frame::Hello { id: NodeId::new(id), incarnation }),
        Just(Frame::Heartbeat),
        Just(Frame::Ready),
        (any::<u32>(), any::<u64>(), arb_msg())
            .prop_map(|(f, sent_us, msg)| Frame::Msg { from: NodeId::new(f), sent_us, msg }),
        Just(Frame::Bye),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encode → decode is the identity for every frame, and the
    /// decoder consumes exactly the bytes the encoder produced.
    #[test]
    fn every_random_frame_round_trips(frame in arb_frame()) {
        let bytes = encode_frame(&frame);
        let (back, used) = decode_frame(&bytes).expect("round trip");
        prop_assert_eq!(&back, &frame);
        prop_assert_eq!(used, bytes.len());
    }

    /// Flipping any single byte in the CRC-protected regions (version,
    /// length, checksum, payload) is detected; nothing panics, and
    /// nothing decodes to a *different* valid frame. The kind byte is
    /// deliberately outside the CRC (see the frame-format docs), so a
    /// flip there may swap one empty-payload control frame for another
    /// — but never alter a protocol message.
    #[test]
    fn single_byte_corruption_never_yields_a_different_frame(
        frame in arb_frame(),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let bytes = encode_frame(&frame);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= flip;
        match decode_frame(&corrupt) {
            // A flip in the length prefix may leave a valid prefix of
            // the original bytes undecodable — any error is fine.
            Err(_) => {}
            Ok((back, _)) if pos == 1 => prop_assert!(
                !matches!(back, Frame::Msg { .. }) || back == frame,
                "a kind-byte flip must never fabricate a protocol message"
            ),
            Ok((back, _)) => prop_assert_eq!(
                back, frame,
                "corruption at byte {} produced a different frame", pos
            ),
        }
    }

    /// A flipped payload byte specifically trips the CRC check (the
    /// header survives, so the error must be `BadCrc`).
    #[test]
    fn payload_corruption_is_a_crc_error(
        msg in arb_msg(),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let frame = Frame::Msg { from: NodeId::new(9), sent_us: 77, msg };
        let bytes = encode_frame(&frame);
        let payload_len = bytes.len() - 10;
        if payload_len == 0 {
            return;
        }
        let pos = 10 + (pos_seed % payload_len as u64) as usize;
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= flip;
        match decode_frame(&corrupt) {
            Err(FrameError::BadCrc { .. }) => {}
            other => prop_assert!(false, "expected BadCrc, got {:?}", other.map(|(f, _)| f)),
        }
    }

    /// Every possible truncation point fails with `Truncated` — the
    /// codec never misreads a prefix as a complete frame.
    #[test]
    fn truncation_at_any_cut_is_clean(frame in arb_frame(), cut_seed in any::<u64>()) {
        let bytes = encode_frame(&frame);
        let cut = (cut_seed % bytes.len() as u64) as usize;
        match decode_frame(&bytes[..cut]) {
            Err(FrameError::Truncated) => {}
            other => prop_assert!(
                false,
                "cut at {} of {}: expected Truncated, got {:?}",
                cut, bytes.len(), other.map(|(f, _)| f)
            ),
        }
    }

    /// Any version byte other than the supported one is rejected
    /// before anything else is looked at.
    #[test]
    fn unknown_versions_are_rejected(frame in arb_frame(), version in any::<u8>()) {
        if version == VERSION {
            return;
        }
        let mut bytes = encode_frame(&frame);
        bytes[0] = version;
        match decode_frame(&bytes) {
            Err(FrameError::BadVersion(v)) => prop_assert_eq!(v, version),
            other => prop_assert!(false, "expected BadVersion, got {:?}", other.map(|(f, _)| f)),
        }
    }

    /// A hostile length prefix beyond `MAX_PAYLOAD` errors before any
    /// buffer is allocated, regardless of the claimed size.
    #[test]
    fn oversized_lengths_error_before_allocation(extra in any::<u32>()) {
        let huge = (MAX_PAYLOAD as u64 + 1 + u64::from(extra)).min(u64::from(u32::MAX)) as u32;
        let mut bytes = vec![VERSION, 2 /* heartbeat */];
        bytes.extend_from_slice(&huge.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        match decode_frame(&bytes) {
            Err(FrameError::Oversized(len)) => prop_assert_eq!(len, huge),
            other => prop_assert!(false, "expected Oversized, got {:?}", other.map(|(f, _)| f)),
        }
    }

    /// Raw byte soup never panics the decoder — every outcome is a
    /// clean `Result`, and `Ok` only for genuinely well-formed bytes.
    #[test]
    fn random_byte_soup_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        if let Ok((frame, used)) = decode_frame(&bytes) {
            // Whatever decoded must re-encode to the bytes read.
            prop_assert_eq!(encode_frame(&frame), bytes[..used].to_vec());
        }
    }

    /// The streaming reader agrees with the buffer decoder: a stream
    /// of random frames reads back in order, and a mid-stream
    /// truncation surfaces as `Truncated`.
    #[test]
    fn streamed_frames_read_back_in_order(
        frames in prop::collection::vec(arb_frame(), 1..8),
        cut_tail in any::<bool>(),
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f));
        }
        if cut_tail {
            stream.pop();
        }
        let mut cursor = std::io::Cursor::new(&stream[..]);
        let complete = if cut_tail { frames.len() - 1 } else { frames.len() };
        for expected in &frames[..complete] {
            let got = read_frame(&mut cursor).expect("well-formed frame");
            prop_assert_eq!(&got, expected);
        }
        if cut_tail {
            match read_frame(&mut cursor) {
                Err(FrameError::Truncated) => {}
                other => prop_assert!(false, "expected Truncated at tail, got {other:?}"),
            }
        }
    }
}
