//! Paper workloads re-packaged for wall-clock, multi-process
//! execution.
//!
//! The canonical [`caex::workloads`] scenarios carry virtual step
//! times tuned for the discrete-event simulator, where message
//! latency is always larger than the inter-step gaps — so concurrent
//! raises really are concurrent. Over real sockets the relation can
//! invert: barrier-exit skew between processes can exceed localhost
//! propagation delay, and a microsecond-staggered raise script would
//! race against incoming Exception messages, breaking the §4.4 count.
//!
//! [`WireScenario::build`] therefore *clamps every step to time zero*.
//! [`caex::drive::drive_node`] fires all due local steps (in script
//! order — the per-node sequence number breaks ties) before its first
//! receive, so each process plays out its entire local script in one
//! burst before reacting to the network. That structurally reproduces
//! the simulator's concurrency assumption regardless of skew, and the
//! real socket traffic can be held to `(N−1)(2P+3Q+1)`.
//!
//! Steps scheduled one virtual second or later (Example 2's belated
//! re-entry probe, scheduled long after resolution) model "afterwards"
//! and are dropped rather than clamped: folding them into the initial
//! burst would change the protocol run.

use caex::workloads::{self, ExampleIds};
use caex::{analysis, Event, Scenario};
use caex_action::{ActionId, ActionRegistry, HandlerTable};
use caex_net::{NetConfig, NodeId, SimTime};
use caex_tree::ExceptionId;
use std::sync::Arc;

/// Steps at or past this virtual time are "long after resolution" and
/// are dropped from wire scripts instead of being clamped into the
/// initial burst.
fn belated() -> SimTime {
    SimTime::from_micros(1_000_000)
}

/// What the sim engine says a scenario must do — the cross-engine
/// oracle for the wire run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimBaseline {
    /// Total protocol messages the simulator sent.
    pub total_messages: u64,
    /// The exception every handler agreed on, if resolution ran.
    pub agreed: Option<ExceptionId>,
}

/// A workload compiled for the socket mesh: zero-clamped script,
/// per-object handler tables, and the applicable §4.4/§4.5 law.
pub struct WireScenario {
    /// Spec string this was built from (`example1`, `general:5,2,1`, …).
    pub name: String,
    /// The action structure.
    pub registry: Arc<ActionRegistry>,
    /// All steps, clamped to [`SimTime::ZERO`] in script order.
    pub steps: Vec<(SimTime, NodeId, Event)>,
    /// Handler tables per `(object, action)`.
    pub handlers: Vec<(NodeId, ActionId, HandlerTable)>,
    /// The action resolution is expected to run in.
    pub action: ActionId,
    /// Declared participants of that action.
    pub participants: Vec<NodeId>,
    /// Mesh size (max participant index + 1 across the registry).
    pub num_nodes: u32,
    /// Closed-form §4.4 message count, when the workload has one.
    pub expected_messages: Option<u64>,
    /// `(p, q)` for the §4.5 multicast law, when the workload fits the
    /// general family (Example 2's cross-level scenario does not).
    pub pq: Option<(u32, u32)>,
}

impl std::fmt::Debug for WireScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireScenario")
            .field("name", &self.name)
            .field("num_nodes", &self.num_nodes)
            .field("steps", &self.steps.len())
            .field("expected_messages", &self.expected_messages)
            .finish()
    }
}

/// Parses a `general:n,p,q` spec tail.
fn parse_general(tail: &str) -> Result<(u32, u32, u32), String> {
    let parts: Vec<&str> = tail.split(',').collect();
    if parts.len() != 3 {
        return Err(format!("general spec needs n,p,q — got `{tail}`"));
    }
    let mut nums = [0u32; 3];
    for (slot, part) in nums.iter_mut().zip(&parts) {
        *slot = part
            .trim()
            .parse()
            .map_err(|e| format!("bad number `{part}` in general spec: {e}"))?;
    }
    let [n, p, q] = nums;
    if p < 1 || p + q > n {
        return Err(format!("general:{n},{p},{q} violates 1 ≤ p and p + q ≤ n"));
    }
    Ok((n, p, q))
}

fn compile(
    name: &str,
    scenario: Scenario,
    action: ActionId,
    participants: Vec<NodeId>,
    expected_messages: Option<u64>,
    pq: Option<(u32, u32)>,
) -> WireScenario {
    let (registry, raw_steps, handlers) = scenario.into_script();
    let steps = raw_steps
        .into_iter()
        .filter(|(t, _, _)| *t < belated())
        .map(|(_, o, e)| (SimTime::ZERO, o, e))
        .collect();
    let num_nodes = registry
        .iter()
        .flat_map(|(_, s)| s.participants().iter().copied())
        .map(|n| n.index() + 1)
        .max()
        .unwrap_or(0);
    WireScenario {
        name: name.to_string(),
        registry,
        steps,
        handlers,
        action,
        participants,
        num_nodes,
        expected_messages,
        pq,
    }
}

impl WireScenario {
    /// Builds a wire scenario from a spec string: `example1`,
    /// `example2`, or `general:n,p,q`.
    ///
    /// # Errors
    ///
    /// Rejects unknown specs and malformed/invalid `general`
    /// parameters.
    pub fn build(spec: &str) -> Result<WireScenario, String> {
        match spec {
            "example1" => {
                let (workload, _ids): (workloads::Workload, ExampleIds) =
                    workloads::example1(NetConfig::default());
                Ok(compile(
                    spec,
                    workload.scenario,
                    workload.action,
                    workload.participants,
                    Some(analysis::messages_general(3, 2, 0)),
                    Some((2, 0)),
                ))
            }
            "example2" => {
                let (workload, _ids) = workloads::example2(NetConfig::default());
                // Cross-level scenario: no closed-form count; the sim
                // baseline is the oracle instead.
                Ok(compile(
                    spec,
                    workload.scenario,
                    workload.action,
                    workload.participants,
                    None,
                    None,
                ))
            }
            other => {
                let Some(tail) = other.strip_prefix("general:") else {
                    return Err(format!(
                        "unknown scenario `{other}` (want example1, example2 or general:n,p,q)"
                    ));
                };
                let (n, p, q) = parse_general(tail)?;
                let workload = workloads::general(n, p, q, NetConfig::default());
                Ok(compile(
                    other,
                    workload.scenario,
                    workload.action,
                    workload.participants,
                    Some(analysis::messages_general(u64::from(n), u64::from(p), u64::from(q))),
                    Some((p, q)),
                ))
            }
        }
    }

    /// Runs the *simulator* on the same spec and returns its verdict —
    /// the oracle the multi-process run is compared against.
    ///
    /// # Errors
    ///
    /// Propagates [`WireScenario::build`]'s spec errors.
    pub fn sim_baseline(spec: &str) -> Result<SimBaseline, String> {
        let (workload, action) = match spec {
            "example1" => {
                let (w, _) = workloads::example1(NetConfig::default());
                let a = w.action;
                (w, a)
            }
            "example2" => {
                let (w, _) = workloads::example2(NetConfig::default());
                let a = w.action;
                (w, a)
            }
            other => {
                let tail = other
                    .strip_prefix("general:")
                    .ok_or_else(|| format!("unknown scenario `{other}`"))?;
                let (n, p, q) = parse_general(tail)?;
                let w = workloads::general(n, p, q, NetConfig::default());
                let a = w.action;
                (w, a)
            }
        };
        let report = workload.run();
        Ok(SimBaseline {
            total_messages: report.total_messages(),
            agreed: report.agreed_exception(action).map(|e| e.id()),
        })
    }

    /// The clamped steps belonging to `object`, in script order.
    #[must_use]
    pub fn steps_for(&self, object: NodeId) -> Vec<(SimTime, Event)> {
        self.steps
            .iter()
            .filter(|(_, o, _)| *o == object)
            .map(|(t, _, e)| (*t, e.clone()))
            .collect()
    }

    /// Whether any step is a completion — decides the participant's
    /// leave mode, mirroring the threaded engine.
    #[must_use]
    pub fn uses_completion(&self) -> bool {
        self.steps
            .iter()
            .any(|(_, _, e)| matches!(e, Event::Complete(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example1_compiles_with_the_closed_form_count() {
        let sc = WireScenario::build("example1").unwrap();
        // Example 1 names its objects O1..O3, so the mesh spans node
        // ids 0..=3 with node 0 a silent bystander.
        assert_eq!(sc.num_nodes, 4);
        assert_eq!(sc.expected_messages, Some(10));
        assert_eq!(sc.pq, Some((2, 0)));
        assert!(sc.steps.iter().all(|(t, _, _)| *t == SimTime::ZERO));
        // Each of the three objects has at least an enter step.
        for i in 0..3 {
            assert!(!sc.steps_for(sc.participants[i]).is_empty());
        }
    }

    #[test]
    fn example2_drops_the_belated_entry_and_has_no_closed_form() {
        let sim = workloads::example2(NetConfig::default()).0.scenario;
        let raw_steps = sim.scripted().count();
        let sc = WireScenario::build("example2").unwrap();
        assert_eq!(sc.expected_messages, None);
        assert_eq!(sc.pq, None);
        assert!(
            sc.steps.len() < raw_steps,
            "the belated O3 re-entry must be dropped ({} vs {raw_steps})",
            sc.steps.len()
        );
    }

    #[test]
    fn general_specs_parse_and_validate() {
        let sc = WireScenario::build("general:5,2,1").unwrap();
        assert_eq!(sc.num_nodes, 5);
        assert_eq!(sc.expected_messages, Some(analysis::messages_general(5, 2, 1)));
        assert!(WireScenario::build("general:3,0,0").is_err());
        assert!(WireScenario::build("general:3,2,2").is_err());
        assert!(WireScenario::build("general:nope").is_err());
        assert!(WireScenario::build("bogus").is_err());
    }

    #[test]
    fn sim_baseline_matches_the_law_for_the_general_family() {
        let base = WireScenario::sim_baseline("general:4,2,1").unwrap();
        assert_eq!(base.total_messages, analysis::messages_general(4, 2, 1));
        assert_eq!(base.agreed, Some(ExceptionId::new(1)));
    }
}
