//! Multi-process orchestration: one OS process per participant, real
//! sockets in between, and the paper's laws asserted against what
//! actually crossed the wire.
//!
//! The coordinator binds a line-based *rendezvous* listener and spawns
//! one `caex-wire --role participant` child per node. Each child binds
//! its own mesh listener **first**, then reports `"<id> <addr>\n"` to
//! the rendezvous and blocks until the coordinator answers with the
//! full address map — so by the time any process starts dialing, every
//! listener already exists and mesh formation has no port races. After
//! the [`crate::wire::WirePort::barrier`], each child plays its
//! zero-clamped script through [`caex::drive::drive_node`] and prints
//! a single `CAEX-WIRE-REPORT {json}` line; the coordinator aggregates
//! those, optionally replays the merged observability streams through
//! the [`caex_obs::Watchdog`], and checks the run against the §4.4
//! closed form (or the simulator baseline) — message counts measured
//! from real socket traffic, not simulated deliveries.
//!
//! Crash-injection runs (`--crash <id>`) suppress the victim's script
//! entirely — it joins the mesh and the barrier, then either
//! `exit(2)`s (connection-reset detection) or `SIGSTOP`s itself
//! (freezing its heartbeat writers, forcing the genuine
//! heartbeat-timeout path). Because the victim is a *declared*
//! participant, the resolver still awaits its ACK; only the failure
//! detector's deserter report lets resolution complete, which is
//! exactly the §4.2 behaviour under desertion the paper calls for.

use crate::scenario::{SimBaseline, WireScenario};
use crate::wire::{WireAddr, WireBound, WireConfig, WirePort};
use caex::drive::drive_node;
use caex::{Event, LeaveMode, NestedStrategy, Note, ObsBridge, Participant};
use caex_net::{NodeId, SimTime};
use caex_obs::json::{self, JsonValue};
use caex_obs::{causal, ObsEvent, Observer, TcpExporter, Watchdog};
use caex_tree::ExceptionId;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

/// Marker prefix of the one report line each participant prints.
pub const REPORT_PREFIX: &str = "CAEX-WIRE-REPORT ";
/// Marker prefix of the coordinator's summary line.
pub const SUMMARY_PREFIX: &str = "CAEX-WIRE-SUMMARY ";

/// Which socket family carries the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Localhost TCP (one listener per node, OS-assigned ports).
    Tcp,
    /// Unix-domain sockets under a spool directory.
    Unix,
}

impl std::str::FromStr for Transport {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tcp" => Ok(Transport::Tcp),
            "unix" => Ok(Transport::Unix),
            other => Err(format!("unknown transport `{other}` (want tcp or unix)")),
        }
    }
}

/// How an injected crash takes the victim down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// `process::exit(2)`: sockets close, peers see resets/EOF.
    Exit,
    /// Self-`SIGSTOP`: the process freezes with sockets open, so only
    /// the heartbeat timeout can expose it.
    Stop,
}

impl std::str::FromStr for CrashMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exit" => Ok(CrashMode::Exit),
            "stop" => Ok(CrashMode::Stop),
            other => Err(format!("unknown crash mode `{other}` (want exit or stop)")),
        }
    }
}

/// *When* an injected crash takes the victim down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// A fixed delay after the barrier, with the victim's script
    /// suppressed — the victim is a passive declared participant whose
    /// silence the resolver must survive (the original crash model).
    Barrier,
    /// The victim plays its script normally and dies the instant its
    /// state machine produces a `Commit` broadcast — i.e. the *elected
    /// resolver* crashes mid-resolution, after collecting ACKs but
    /// before any commit reaches a peer. Survivors must re-elect and
    /// finish resolution themselves (§4.2 failover).
    Commit,
}

impl std::str::FromStr for CrashPoint {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "barrier" => Ok(CrashPoint::Barrier),
            "commit" => Ok(CrashPoint::Commit),
            other => Err(format!("unknown crash point `{other}` (want barrier or commit)")),
        }
    }
}

/// Takes this process down in the requested way, from wherever in the
/// drive loop it is called. `Stop` sends ourselves `SIGSTOP` via
/// `kill(1)` and *returns after `SIGCONT`* — callers resume exactly
/// where they froze, which is what turns a stopped commit-point victim
/// into a zombie resolver flushing stale `Commit`s on resume.
fn crash_now(mode: CrashMode) {
    match mode {
        CrashMode::Exit => std::process::exit(2),
        CrashMode::Stop => {
            // Freeze in place: writer threads stop mid-flight,
            // heartbeats cease, sockets stay open — only the
            // peers' heartbeat timeout can expose us.
            let pid = std::process::id().to_string();
            let stopped = Command::new("kill").args(["-STOP", &pid]).status();
            if stopped.is_err() {
                std::process::exit(2);
            }
        }
    }
}

/// Everything a participant process needs to run its node.
#[derive(Debug, Clone)]
pub struct ParticipantOptions {
    /// This node.
    pub id: NodeId,
    /// Scenario spec (`example1`, `example2`, `general:n,p,q`).
    pub scenario: String,
    /// Socket family for the mesh.
    pub transport: Transport,
    /// Spool directory for Unix-domain sockets.
    pub sock_dir: PathBuf,
    /// The coordinator's rendezvous address.
    pub rendezvous: SocketAddr,
    /// Observability collector to stream `ObsEvent`s to, if any.
    pub obs: Option<SocketAddr>,
    /// Transport tuning.
    pub config: WireConfig,
    /// Drive-loop idle timeout.
    pub idle_timeout: Duration,
    /// Crash this long after the barrier (the victim's script is
    /// suppressed).
    pub crash_after: Option<Duration>,
    /// How to crash.
    pub crash_mode: CrashMode,
    /// When to crash: [`CrashPoint::Barrier`] (timer, script
    /// suppressed) or [`CrashPoint::Commit`] (script plays, die at the
    /// commit broadcast). Only consulted when `crash_after` is set.
    pub crash_point: CrashPoint,
    /// Transient-partition victim: `SIGSTOP` self right after the
    /// barrier (script *not* suppressed, sockets open) and resume on
    /// the coordinator's `SIGCONT` — the healed-partition experiment.
    pub partition_hold: bool,
}

/// What one node did, as printed in its `CAEX-WIRE-REPORT` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeReport {
    /// The node.
    pub id: u32,
    /// Protocol messages this node pushed onto the wire.
    pub sent: u64,
    /// Protocol messages delivered into its drive loop.
    pub delivered: u64,
    /// Messages dropped (undeliverable or drained at exit).
    pub dropped: u64,
    /// Undelivered messages drained from the inbox at exit.
    pub drained: u64,
    /// Deserter reports folded into the protocol.
    pub desertions: u64,
    /// Peers this node excluded as deserters.
    pub deserters: Vec<u32>,
    /// `(action, exception)` pairs whose handlers started here.
    pub handled: Vec<(u32, u32)>,
    /// Per-peer clock-skew estimates `(peer, min(recv − sent) µs)` —
    /// floor one-way delay plus the peer's clock offset relative to
    /// this process (see `WirePort::skew_estimates`).
    pub skew: Vec<(u32, i64)>,
}

impl NodeReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("id".into(), JsonValue::num(u64::from(self.id))),
            ("sent".into(), JsonValue::num(self.sent)),
            ("delivered".into(), JsonValue::num(self.delivered)),
            ("dropped".into(), JsonValue::num(self.dropped)),
            ("drained".into(), JsonValue::num(self.drained)),
            ("desertions".into(), JsonValue::num(self.desertions)),
            (
                "deserters".into(),
                JsonValue::Arr(
                    self.deserters
                        .iter()
                        .map(|d| JsonValue::num(u64::from(*d)))
                        .collect(),
                ),
            ),
            (
                "handled".into(),
                JsonValue::Arr(
                    self.handled
                        .iter()
                        .map(|(a, e)| {
                            JsonValue::Obj(vec![
                                ("action".into(), JsonValue::num(u64::from(*a))),
                                ("exc".into(), JsonValue::num(u64::from(*e))),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "skew".into(),
                JsonValue::Arr(
                    self.skew
                        .iter()
                        .map(|(peer, us)| {
                            #[allow(clippy::cast_precision_loss)] // µs offsets stay far below 2^53
                            JsonValue::Obj(vec![
                                ("peer".into(), JsonValue::num(u64::from(*peer))),
                                ("us".into(), JsonValue::Num(*us as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<NodeReport, String> {
        let field = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("report missing numeric `{k}`"))
        };
        let list = |k: &str| -> Result<Vec<u32>, String> {
            v.get(k)
                .and_then(JsonValue::as_array)
                .ok_or_else(|| format!("report missing array `{k}`"))?
                .iter()
                .map(|x| {
                    x.as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| format!("bad entry in `{k}`"))
                })
                .collect()
        };
        let handled = v
            .get("handled")
            .and_then(JsonValue::as_array)
            .ok_or("report missing array `handled`")?
            .iter()
            .map(|h| {
                let num = |k: &str| {
                    h.get(k)
                        .and_then(JsonValue::as_u64)
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| format!("bad handled entry `{k}`"))
                };
                Ok((num("action")?, num("exc")?))
            })
            .collect::<Result<Vec<_>, String>>()?;
        // Absent in pre-v2 report lines; default to no estimates.
        let skew = v
            .get("skew")
            .and_then(JsonValue::as_array)
            .unwrap_or(&[])
            .iter()
            .map(|s| {
                let peer = s
                    .get("peer")
                    .and_then(JsonValue::as_u64)
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or("bad skew entry `peer`")?;
                #[allow(clippy::cast_possible_truncation)] // µs offsets fit i64 exactly
                let us = s
                    .get("us")
                    .and_then(JsonValue::as_f64)
                    .map(|f| f as i64)
                    .ok_or("bad skew entry `us`")?;
                Ok((peer, us))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(NodeReport {
            id: u32::try_from(field("id")?).map_err(|_| "id out of range".to_owned())?,
            sent: field("sent")?,
            delivered: field("delivered")?,
            dropped: field("dropped")?,
            drained: field("drained")?,
            desertions: field("desertions")?,
            deserters: list("deserters")?,
            handled,
            skew,
        })
    }
}

/// The coordinator's verdict over a whole multi-process run.
#[derive(Debug)]
pub struct RunSummary {
    /// Scenario spec.
    pub scenario: String,
    /// Mesh size (spawned processes).
    pub num_nodes: u32,
    /// Protocol messages that crossed real sockets (sum over nodes).
    pub total_sent: u64,
    /// The §4.4 closed-form count, when the workload has one.
    pub expected_messages: Option<u64>,
    /// What the simulator sent for the same spec.
    pub sim_messages: u64,
    /// The exception the wire run resolved to, if any.
    pub resolved: Option<u32>,
    /// The exception the simulator resolved to, if any.
    pub sim_resolved: Option<u32>,
    /// Nodes reported as deserters by any survivor.
    pub deserters: Vec<u32>,
    /// Watchdog violations over the merged observability streams.
    pub watchdog_violations: Vec<String>,
    /// Per-node reports, in node order (crashed nodes are absent).
    pub reports: Vec<NodeReport>,
    /// Assertion failures; empty means the run checked out.
    pub failures: Vec<String>,
}

impl RunSummary {
    /// `true` iff every assertion held.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// The summary as one JSON object (the `CAEX-WIRE-SUMMARY` body).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let opt = |o: Option<u64>| o.map_or(JsonValue::Null, JsonValue::num);
        JsonValue::Obj(vec![
            ("scenario".into(), JsonValue::str(self.scenario.clone())),
            ("num_nodes".into(), JsonValue::num(u64::from(self.num_nodes))),
            ("total_sent".into(), JsonValue::num(self.total_sent)),
            ("expected_messages".into(), opt(self.expected_messages)),
            ("sim_messages".into(), JsonValue::num(self.sim_messages)),
            ("resolved".into(), opt(self.resolved.map(u64::from))),
            ("sim_resolved".into(), opt(self.sim_resolved.map(u64::from))),
            (
                "deserters".into(),
                JsonValue::Arr(self.deserters.iter().map(|d| JsonValue::num(u64::from(*d))).collect()),
            ),
            (
                "watchdog_violations".into(),
                JsonValue::Arr(
                    self.watchdog_violations
                        .iter()
                        .map(JsonValue::str)
                        .collect(),
                ),
            ),
            (
                "failures".into(),
                JsonValue::Arr(self.failures.iter().map(JsonValue::str).collect()),
            ),
            ("ok".into(), JsonValue::Bool(self.ok())),
        ])
    }
}

/// The mesh address this node should bind, before the OS fills in
/// ephemeral details.
fn bind_addr(transport: Transport, sock_dir: &std::path::Path, id: NodeId) -> WireAddr {
    match transport {
        Transport::Tcp => WireAddr::Tcp(SocketAddr::from(([127, 0, 0, 1], 0))),
        Transport::Unix => WireAddr::Unix(sock_dir.join(format!("caex-wire-{}.sock", id.index()))),
    }
}

/// Exchanges this node's bound address for the full map via the
/// coordinator's rendezvous: send `"<id> <addr>\n"`, read back one
/// line of `num_nodes` addresses in node order.
fn rendezvous_exchange(
    rendezvous: SocketAddr,
    id: NodeId,
    local: &WireAddr,
) -> Result<Vec<WireAddr>, String> {
    let mut stream = None;
    for attempt in 0..10 {
        match TcpStream::connect_timeout(&rendezvous, Duration::from_secs(2)) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(e) if attempt == 9 => return Err(format!("rendezvous connect: {e}")),
            Err(_) => thread::sleep(Duration::from_millis(30)),
        }
    }
    let mut stream = stream.expect("connect loop either sets or returns");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(format!("{} {local}\n", id.index()).as_bytes())
        .map_err(|e| format!("rendezvous write: {e}"))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("rendezvous read: {e}"))?;
    line.trim()
        .split(' ')
        .map(|s| s.parse::<WireAddr>())
        .collect()
}

/// Applies `handle` under the observability bridge, mirroring the
/// threaded engine's instrumentation (wall-clock micros since `start`
/// become the event's `SimTime` and `wall_micros`). Transport
/// deliveries (`from` is `Some`) additionally emit the
/// `MessageReceived` event causal analysis pairs with the sender's
/// `MessageSent`.
fn handle_observed(
    participant: &mut Participant,
    event: Event,
    from: Option<caex_net::NodeId>,
    bridge: &mut ObsBridge,
    start: Instant,
    obs: &mut dyn Observer,
) -> Vec<caex::Effect> {
    if let Some(from) = from {
        let wall = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        bridge.on_receive(
            participant.id(),
            &event,
            from,
            SimTime::from_micros(wall),
            Some(wall),
            obs,
        );
    }
    let pre = bridge.pre(participant, &event);
    let fx = participant.handle(event);
    let wall = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    bridge.post(&pre, participant, &fx, SimTime::from_micros(wall), Some(wall), obs);
    fx
}

/// Runs one node end-to-end over an already-connected port: barrier,
/// script, drive loop, report. Shared by the child process entry point
/// and the in-process [`run_local`] mesh.
#[allow(clippy::too_many_arguments)]
fn drive_wire_node(
    port: &WirePort,
    scenario: &WireScenario,
    id: NodeId,
    idle_timeout: Duration,
    suppress_steps: bool,
    commit_crash: Option<CrashMode>,
    obs: &mut dyn Observer,
    start: Instant,
) -> NodeReport {
    let mut participant = Participant::new(id, std::sync::Arc::clone(&scenario.registry), NestedStrategy::Abort);
    if scenario.uses_completion() {
        participant.set_leave_mode(LeaveMode::Distributed);
    }
    // Handler tables cannot be cloned (they hold closures), so each
    // process rebuilds the scenario and takes only its own tables.
    let steps = if suppress_steps { Vec::new() } else { scenario.steps_for(id) };
    let mut notes: Vec<Note> = Vec::new();
    // The event-handle path and the note callback both need the bridge
    // and the observer (the drive loop folds failure-detector effects
    // in outside any event handle), so both live behind `RefCell`s.
    let bridge = std::cell::RefCell::new(ObsBridge::new());
    let obs = std::cell::RefCell::new(obs);
    // Anchor the wire's send-time stamps to the same epoch as the
    // observation clock, so peer skew estimates translate directly
    // into per-stream timestamp corrections.
    port.rebase_epoch(start);
    let summary = drive_node(
        port,
        &mut participant,
        steps,
        start,
        idle_timeout,
        |p, ev, from| {
            let fx =
                handle_observed(p, ev, from, &mut bridge.borrow_mut(), start, *obs.borrow_mut());
            // Commit-point crash: the resolver dies the moment its
            // state machine decides to commit, before any `Commit`
            // leaves this process. A `Stop` victim freezes *here*,
            // holding the unsent commits; when the coordinator
            // `SIGCONT`s it, this closure returns and the stale
            // commits finally hit the wire — by then the survivors
            // have deserted us, re-elected, and must fence them.
            if let Some(mode) = commit_crash {
                let committing = fx.iter().any(|e| {
                    matches!(
                        e,
                        caex::Effect::Send {
                            msg: caex::Msg::Commit { .. },
                            ..
                        }
                    )
                });
                if committing {
                    crash_now(mode);
                }
            }
            fx
        },
        |n| {
            // Detector transitions reach this callback without passing
            // through `ObsBridge::post` (the drive loop polls the
            // transport directly); bridge them here. The translation
            // is idempotent, so the engine's own proof-of-life rejoin
            // — which *does* flow through `post` — never doubles.
            if matches!(n, Note::PeerSuspected { .. } | Note::PeerRejoined { .. }) {
                let wall = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                bridge.borrow_mut().note_out_of_band(
                    id,
                    &n,
                    SimTime::from_micros(wall),
                    Some(wall),
                    *obs.borrow_mut(),
                );
            }
            notes.push(n);
        },
    );
    let obs = obs.into_inner();
    let end = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    obs.on_run_end(SimTime::from_micros(end));
    let stats = port.stats();
    let stats = stats.lock();
    NodeReport {
        id: id.index(),
        sent: stats.sent_total(),
        delivered: stats.delivered_total(),
        dropped: stats.dropped_total(),
        drained: summary.drained as u64,
        desertions: summary.deserted as u64,
        deserters: participant.deserters().iter().map(|d| d.index()).collect(),
        handled: notes
            .iter()
            .filter_map(|n| match n {
                Note::HandlerStarted { action, exc, .. } => {
                    Some((action.index(), exc.id().index()))
                }
                _ => None,
            })
            .collect(),
        skew: port
            .skew_estimates()
            .into_iter()
            .map(|(peer, us)| (peer.index(), us))
            .collect(),
    }
}

/// Child-process entry point: bind, rendezvous, connect, barrier,
/// (maybe arm the crash), drive, print the report line.
///
/// # Errors
///
/// Any setup failure (bad spec, socket error, barrier timeout) is
/// returned as a message; the binary maps it to a nonzero exit.
pub fn run_participant(opts: &ParticipantOptions) -> Result<(), String> {
    let scenario = WireScenario::build(&opts.scenario)?;
    let bound = WireBound::bind(opts.id, &bind_addr(opts.transport, &opts.sock_dir, opts.id), opts.config.clone())
        .map_err(|e| format!("bind: {e}"))?;
    let addrs = rendezvous_exchange(opts.rendezvous, opts.id, bound.local_addr())?;
    if addrs.len() != scenario.num_nodes as usize {
        return Err(format!(
            "rendezvous sent {} addresses for a {}-node scenario",
            addrs.len(),
            scenario.num_nodes
        ));
    }
    let port = bound.connect(&addrs).map_err(|e| format!("mesh connect: {e}"))?;

    let mut exporter = match opts.obs {
        Some(addr) => Some(
            TcpExporter::connect_timeout(&addr, Duration::from_secs(2))
                .map_err(|e| format!("obs connect: {e}"))?,
        ),
        None => None,
    };

    port.barrier(Duration::from_secs(15))?;
    let start = Instant::now();

    if opts.partition_hold {
        // The transient partition: freeze with the mesh formed and the
        // script not yet started. Sockets stay open and heartbeats
        // cease, so the peers' accrual detectors climb into Suspected
        // — but, tuned for the outage, never Confirm. `crash_now`
        // returns when the coordinator's `SIGCONT` heals the
        // partition; every scenario step is then overdue and fires
        // zero-clamped, the buffered inbound traffic drains, and the
        // run completes as if the outage were one long latency spike.
        crash_now(CrashMode::Stop);
    }

    let barrier_crash = opts.crash_after.is_some() && opts.crash_point == CrashPoint::Barrier;
    let commit_crash = (opts.crash_after.is_some() && opts.crash_point == CrashPoint::Commit)
        .then_some(opts.crash_mode);
    if barrier_crash {
        let after = opts.crash_after.expect("barrier_crash implies crash_after");
        let mode = opts.crash_mode;
        thread::spawn(move || {
            thread::sleep(after);
            crash_now(mode);
        });
    }

    let report = match exporter.as_mut() {
        Some(obs) => drive_wire_node(
            &port, &scenario, opts.id, opts.idle_timeout, barrier_crash, commit_crash, obs, start,
        ),
        None => drive_wire_node(
            &port, &scenario, opts.id, opts.idle_timeout, barrier_crash, commit_crash, &mut (), start,
        ),
    };
    drop(exporter); // close the obs stream before reporting
    drop(port);
    println!("{REPORT_PREFIX}{}", report.to_json());
    Ok(())
}

/// Knobs for a coordinator run.
#[derive(Debug, Clone)]
pub struct CoordinatorOptions {
    /// Scenario spec.
    pub scenario: String,
    /// Path to the `caex-wire` binary to spawn participants from.
    pub binary: PathBuf,
    /// Socket family for the mesh.
    pub transport: Transport,
    /// Spool directory for Unix-domain sockets.
    pub sock_dir: PathBuf,
    /// Stream and check observability events (disabled on crash runs).
    pub obs: bool,
    /// Write the skew-stitched, merged observability stream as JSONL
    /// here (requires `obs`; the file feeds `caex-report`).
    pub obs_out: Option<PathBuf>,
    /// Crash this node mid-run, if set.
    pub crash: Option<NodeId>,
    /// How the victim crashes.
    pub crash_mode: CrashMode,
    /// When the victim crashes (barrier timer vs commit point).
    pub crash_point: CrashPoint,
    /// Delay between barrier and crash (barrier point only).
    pub crash_after: Duration,
    /// `SIGCONT` a stop-mode victim this long after the barrier — the
    /// zombie-resolver experiment. The resumed victim finishes its
    /// drive loop and prints a report like any other node.
    pub resume_after: Option<Duration>,
    /// Transient partition: `SIGSTOP` this node right after the
    /// barrier and `SIGCONT` it after the outage. Unlike
    /// [`CoordinatorOptions::crash`], the victim's script is *not*
    /// suppressed and the run is assessed as a clean run — the §4.4
    /// message law must hold after the heal and **no** deserter may be
    /// reported, because with [`CoordinatorOptions::with_partition`]'s
    /// detector tuning the outage only ever reaches `Suspected`.
    pub partition: Option<(NodeId, Duration)>,
    /// Transport tuning handed to every child.
    pub config: WireConfig,
    /// Children's drive-loop idle timeout.
    pub idle_timeout: Duration,
    /// Hard wall-clock budget for the whole run.
    pub deadline: Duration,
}

impl CoordinatorOptions {
    /// Defaults for `spec`, spawning `binary`.
    #[must_use]
    pub fn new(spec: impl Into<String>, binary: impl Into<PathBuf>) -> Self {
        CoordinatorOptions {
            scenario: spec.into(),
            binary: binary.into(),
            transport: Transport::Tcp,
            sock_dir: std::env::temp_dir(),
            obs: true,
            obs_out: None,
            crash: None,
            crash_mode: CrashMode::Exit,
            crash_point: CrashPoint::Barrier,
            crash_after: Duration::from_millis(150),
            resume_after: None,
            partition: None,
            config: WireConfig::default(),
            idle_timeout: Duration::from_millis(300),
            deadline: Duration::from_secs(30),
        }
    }

    /// Injects a crash: victim, mode, and tuned timeouts so survivors
    /// outlast detection (idle must exceed `crash_after` plus the
    /// confirmation latency, or they would quiesce before deserting
    /// the victim). The legacy 400ms timeout on a 40ms heartbeat maps
    /// to φ ≈ 4.3 via [`WireConfig::with_crash_timeout`].
    #[must_use]
    pub fn with_crash(mut self, victim: NodeId, mode: CrashMode) -> Self {
        self.crash = Some(victim);
        self.crash_mode = mode;
        self.obs = false;
        self.config.heartbeat_interval = Duration::from_millis(40);
        self.config = self.config.with_crash_timeout(Duration::from_millis(400));
        self.idle_timeout = Duration::from_millis(1500);
        self
    }

    /// Injects a *transient* partition: `victim` is `SIGSTOP`ped right
    /// after the barrier and `SIGCONT`ed after `outage`. The detector
    /// is tuned so the outage crosses the suspicion threshold early
    /// (the flap is observable) but confirmation would need 2.5× the
    /// outage of silence — the healed peer rejoins, resolution
    /// completes with every participant, and the §4.4 message law
    /// still holds. Survivor idle timeouts are stretched past the
    /// outage so nobody quiesces while the resolution waits for the
    /// partitioned peer's ACK.
    #[must_use]
    pub fn with_partition(mut self, victim: NodeId, outage: Duration) -> Self {
        self.partition = Some((victim, outage));
        self.config.heartbeat_interval = Duration::from_millis(40);
        self.config = self.config.with_crash_timeout(outage.mul_f64(2.5));
        self.idle_timeout = outage + Duration::from_millis(1000);
        self.deadline = self.deadline.max(outage.mul_f64(4.0) + Duration::from_secs(15));
        self
    }

    /// Moves the injected crash to the victim's commit broadcast: the
    /// victim plays its script (raising and getting elected §4.2
    /// resolver) and dies with the commit unsent, so survivors must
    /// fail over. Implies [`CoordinatorOptions::with_crash`] tuning.
    #[must_use]
    pub fn at_commit_point(mut self) -> Self {
        self.crash_point = CrashPoint::Commit;
        self
    }

    /// `SIGCONT`s a stop-mode victim `after` the barrier, turning it
    /// into a zombie resolver: it wakes holding stale state (for a
    /// commit-point crash, unsent `Commit`s), flushes it at the
    /// already-failed-over survivors, and must be fenced rather than
    /// split the decision.
    #[must_use]
    pub fn resuming_after(mut self, after: Duration) -> Self {
        self.resume_after = Some(after);
        self
    }
}

/// Serves the rendezvous: accepts `n` connections, reads each node's
/// `"<id> <addr>"` line, then answers every node with the full map.
fn serve_rendezvous(
    listener: &TcpListener,
    n: usize,
    deadline: Instant,
) -> Result<Vec<WireAddr>, String> {
    listener.set_nonblocking(true).map_err(|e| e.to_string())?;
    let mut slots: Vec<Option<WireAddr>> = vec![None; n];
    let mut streams = Vec::with_capacity(n);
    while streams.len() < n {
        if Instant::now() > deadline {
            return Err(format!(
                "rendezvous timed out with {}/{n} nodes registered",
                streams.len()
            ));
        }
        match listener.accept() {
            Ok((stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .and_then(|()| stream.set_read_timeout(Some(Duration::from_secs(10))))
                    .map_err(|e| e.to_string())?;
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                reader
                    .read_line(&mut line)
                    .map_err(|e| format!("rendezvous read: {e}"))?;
                let (id, addr) = line
                    .trim()
                    .split_once(' ')
                    .ok_or_else(|| format!("malformed rendezvous line `{}`", line.trim()))?;
                let id: usize = id.parse().map_err(|e| format!("bad node id: {e}"))?;
                if id >= n {
                    return Err(format!("rendezvous id {id} out of range for {n} nodes"));
                }
                slots[id] = Some(addr.parse::<WireAddr>()?);
                streams.push(reader.into_inner());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(format!("rendezvous accept: {e}")),
        }
    }
    let map: Vec<WireAddr> = slots
        .into_iter()
        .map(|s| s.ok_or_else(|| "a node registered twice".to_owned()))
        .collect::<Result<_, _>>()?;
    let line = map
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(" ")
        + "\n";
    for mut stream in streams {
        stream
            .write_all(line.as_bytes())
            .map_err(|e| format!("rendezvous reply: {e}"))?;
    }
    Ok(map)
}

/// Reaps children within the deadline. A stop-mode victim that will
/// never be resumed cannot exit on its own: once every other child is
/// done it is killed. A victim with a scheduled `SIGCONT` (`resumes`)
/// is left to finish and exit like any other node. On deadline,
/// everything still running is killed and a failure recorded.
fn reap_children(
    children: &mut [(NodeId, Child)],
    victim: Option<NodeId>,
    crash_mode: CrashMode,
    resumes: bool,
    deadline: Instant,
    failures: &mut Vec<String>,
) {
    let mut exited = vec![false; children.len()];
    loop {
        let mut all_others_done = true;
        for (i, (id, child)) in children.iter_mut().enumerate() {
            if exited[i] {
                continue;
            }
            match child.try_wait() {
                Ok(Some(status)) => {
                    exited[i] = true;
                    let is_victim = victim == Some(*id);
                    let expected = if is_victim && crash_mode == CrashMode::Exit {
                        status.code() == Some(2)
                    } else if is_victim {
                        true // stop-mode victim dies by our SIGKILL
                    } else {
                        status.success()
                    };
                    if !expected {
                        failures.push(format!("node {id} exited with {status}"));
                    }
                }
                Ok(None) => {
                    if victim != Some(*id) {
                        all_others_done = false;
                    }
                }
                Err(e) => {
                    exited[i] = true;
                    failures.push(format!("waiting on node {id}: {e}"));
                }
            }
        }
        if exited.iter().all(|e| *e) {
            return;
        }
        let overdue = Instant::now() > deadline;
        for (i, (id, child)) in children.iter_mut().enumerate() {
            if exited[i] {
                continue;
            }
            let stalled_victim = all_others_done && victim == Some(*id) && !resumes;
            if overdue || stalled_victim {
                // SIGKILL works on a SIGSTOPped process too.
                let _ = child.kill();
                if overdue && victim != Some(*id) {
                    failures.push(format!("node {id} missed the deadline and was killed"));
                }
            }
        }
        thread::sleep(Duration::from_millis(10));
    }
}

/// Replays the merged per-process observability streams through the
/// watchdog: concatenate, stable-sort by timestamp (per-object order
/// is preserved — each object's events come from one stream), check.
fn run_watchdog(streams: Vec<Vec<ObsEvent>>, pq: Option<(u32, u32)>) -> Vec<String> {
    let mut merged: Vec<ObsEvent> = streams.into_iter().flatten().collect();
    merged.sort_by_key(|e| e.at);
    let mut dog = Watchdog::new().with_expected_commits(1);
    if pq.is_some() {
        dog = dog.with_multicast_law();
    }
    for event in &merged {
        dog.on_event(event);
    }
    dog.violations().iter().map(ToString::to_string).collect()
}

/// Spawns the mesh, runs the scenario across OS processes, and checks
/// the §4.4 / §4.5 laws against the aggregated socket traffic.
///
/// # Errors
///
/// Infrastructure failures (spawn, rendezvous, report parsing) are
/// errors; *protocol* failures land in [`RunSummary::failures`] so
/// callers can inspect them.
///
/// # Panics
///
/// Panics if an internal collector thread panicked.
#[allow(clippy::too_many_lines)]
pub fn run_coordinator(opts: &CoordinatorOptions) -> Result<RunSummary, String> {
    let scenario = WireScenario::build(&opts.scenario)?;
    let n = scenario.num_nodes;
    let deadline = Instant::now() + opts.deadline;
    let crash_run = opts.crash.is_some();
    if let Some(victim) = opts.crash {
        if victim.index() >= n {
            return Err(format!("crash victim {victim} out of range for {n} nodes"));
        }
    }

    // The simulator is the oracle; run it first, in-process.
    let baseline: SimBaseline = WireScenario::sim_baseline(&opts.scenario)?;

    let rendezvous = TcpListener::bind(("127.0.0.1", 0)).map_err(|e| e.to_string())?;
    let rendezvous_addr = rendezvous.local_addr().map_err(|e| e.to_string())?;

    let use_obs = opts.obs && !crash_run;
    let (obs_addr, collector) = if use_obs {
        let collector = caex_obs::EventCollector::bind(("127.0.0.1", 0)).map_err(|e| e.to_string())?;
        let addr = collector.local_addr().map_err(|e| e.to_string())?;
        let handle = thread::spawn(move || collector.collect(n as usize));
        (Some(addr), Some(handle))
    } else {
        (None, None)
    };

    let mut children: Vec<(NodeId, Child)> = Vec::with_capacity(n as usize);
    let mut stdout_readers = Vec::with_capacity(n as usize);
    for i in 0..n {
        let id = NodeId::new(i);
        let mut cmd = Command::new(&opts.binary);
        cmd.arg("--role")
            .arg("participant")
            .arg("--scenario")
            .arg(&opts.scenario)
            .arg("--id")
            .arg(i.to_string())
            .arg("--rendezvous")
            .arg(rendezvous_addr.to_string())
            .arg("--transport")
            .arg(match opts.transport {
                Transport::Tcp => "tcp",
                Transport::Unix => "unix",
            })
            .arg("--sock-dir")
            .arg(&opts.sock_dir)
            .arg("--idle-timeout-ms")
            .arg(opts.idle_timeout.as_millis().to_string())
            .arg("--heartbeat-ms")
            .arg(opts.config.heartbeat_interval.as_millis().to_string())
            .arg("--phi-suspect")
            .arg(opts.config.phi_suspect.to_string())
            .arg("--phi-confirm")
            .arg(opts.config.phi_confirm.to_string())
            .arg("--phi-window")
            .arg(opts.config.phi_window.to_string())
            .arg("--reconnect-backoff-ms")
            .arg(opts.config.reconnect_backoff.as_millis().to_string())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        if let Some(addr) = obs_addr {
            cmd.arg("--obs").arg(addr.to_string());
        }
        if opts.partition.is_some_and(|(victim, _)| victim == id) {
            cmd.arg("--partition-hold").arg("1");
        }
        if opts.crash == Some(id) {
            cmd.arg("--crash-after-ms")
                .arg(opts.crash_after.as_millis().to_string())
                .arg("--crash-mode")
                .arg(match opts.crash_mode {
                    CrashMode::Exit => "exit",
                    CrashMode::Stop => "stop",
                })
                .arg("--crash-point")
                .arg(match opts.crash_point {
                    CrashPoint::Barrier => "barrier",
                    CrashPoint::Commit => "commit",
                });
        }
        let mut child = cmd
            .spawn()
            .map_err(|e| format!("spawning node {i}: {e}"))?;
        let stdout = child.stdout.take().expect("stdout was piped");
        stdout_readers.push(thread::spawn(move || {
            BufReader::new(stdout)
                .lines()
                .map_while(Result::ok)
                .collect::<Vec<String>>()
        }));
        children.push((id, child));
    }

    let rendezvous_result = serve_rendezvous(&rendezvous, n as usize, deadline);
    let mut failures: Vec<String> = Vec::new();
    if let Err(e) = rendezvous_result {
        // Children will fail their own rendezvous; kill and bail.
        for (_, child) in &mut children {
            let _ = child.kill();
        }
        return Err(e);
    }

    let resume = match (opts.crash, opts.resume_after, opts.partition) {
        (Some(victim), Some(after), _) => Some((victim, after)),
        (_, _, Some((victim, outage))) => Some((victim, outage)),
        _ => None,
    };
    if let Some((victim, after)) = resume {
        if let Some((_, child)) = children.iter().find(|(id, _)| *id == victim) {
            let pid = child.id().to_string();
            thread::spawn(move || {
                thread::sleep(after);
                let _ = Command::new("kill").args(["-CONT", &pid]).status();
            });
        }
    }

    reap_children(
        &mut children,
        opts.crash,
        opts.crash_mode,
        opts.resume_after.is_some(),
        deadline,
        &mut failures,
    );

    let mut reports: Vec<NodeReport> = Vec::new();
    for (i, reader) in stdout_readers.into_iter().enumerate() {
        let lines = reader.join().expect("stdout reader panicked");
        let report_line = lines
            .iter()
            .find_map(|l| l.strip_prefix(REPORT_PREFIX));
        match report_line {
            Some(body) => {
                let value = json::parse(body).map_err(|e| format!("node {i} report: {e:?}"))?;
                reports.push(NodeReport::from_json(&value)?);
            }
            None if opts.crash == Some(NodeId::new(i as u32)) => {} // the victim dies reportless
            None => failures.push(format!("node {i} printed no report")),
        }
    }
    reports.sort_by_key(|r| r.id);

    let watchdog_violations = match collector {
        Some(handle) => {
            let streams = handle
                .join()
                .expect("collector thread panicked")
                .map_err(|e| format!("collecting obs streams: {e}"))?;
            // Stitch the per-process streams onto node 0's timeline:
            // solve pairwise skew estimates (reported by every node)
            // into per-stream offsets, shift, then merge time-sorted.
            let skews: BTreeMap<u32, BTreeMap<u32, i64>> = reports
                .iter()
                .map(|r| (r.id, r.skew.iter().copied().collect()))
                .collect();
            let offsets = causal::solve_offsets(&skews, 0);
            let mut streams = streams;
            for stream in &mut streams {
                let Some(node) = stream.first().map(|e| e.object.index()) else {
                    continue;
                };
                causal::shift_events(stream, offsets.get(&node).copied().unwrap_or(0));
            }
            let merged = causal::merge_streams(streams);
            if let Some(path) = &opts.obs_out {
                let mut out = String::with_capacity(merged.len() * 96);
                for event in &merged {
                    out.push_str(&caex_obs::exporters::event_to_json(event).to_string());
                    out.push('\n');
                }
                std::fs::write(path, out)
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
            }
            run_watchdog(vec![merged], scenario.pq)
        }
        None => Vec::new(),
    };
    for v in &watchdog_violations {
        failures.push(format!("watchdog: {v}"));
    }

    let total_sent: u64 = reports.iter().map(|r| r.sent).sum();
    let action = scenario.action.index();
    let mut resolved_set: BTreeSet<u32> = BTreeSet::new();
    let mut handled_count = 0usize;
    for report in &reports {
        for (a, e) in &report.handled {
            if *a == action {
                resolved_set.insert(*e);
                handled_count += 1;
            }
        }
    }
    if resolved_set.len() > 1 {
        failures.push(format!(
            "agreement violated: handlers saw exceptions {resolved_set:?}"
        ));
    }
    let resolved = resolved_set.iter().next().copied();

    // A resumed zombie victim prints a report too; its view of peers
    // that hung up after the run is not a protocol outcome, so only
    // survivors' desertions count.
    let mut deserters: Vec<u32> = reports
        .iter()
        .filter(|r| opts.crash.is_none_or(|v| r.id != v.index()))
        .flat_map(|r| r.deserters.iter().copied())
        .collect();
    deserters.sort_unstable();
    deserters.dedup();

    if crash_run {
        let victim = opts.crash.expect("crash_run").index();
        // Every surviving declared participant must have excluded the
        // victim and still reached the same resolution as the oracle.
        for p in &scenario.participants {
            if p.index() == victim {
                continue;
            }
            let listed = reports
                .iter()
                .find(|r| r.id == p.index())
                .is_some_and(|r| r.deserters.contains(&victim));
            if !listed {
                failures.push(format!(
                    "survivor {p} did not report node {victim} as a deserter"
                ));
            }
        }
        if resolved != baseline.agreed.map(|e| e.index()) {
            failures.push(format!(
                "crash run resolved {resolved:?}, simulator resolved {:?}",
                baseline.agreed.map(|e| e.index())
            ));
        }
        let live_participants = scenario
            .participants
            .iter()
            .filter(|p| p.index() != victim)
            .count();
        // A commit-point victim starts its own handler before dying
        // (and a resumed zombie reports it), so only survivors are
        // held to the one-handler-each law.
        let survivor_handled = reports
            .iter()
            .filter(|r| r.id != victim)
            .flat_map(|r| r.handled.iter())
            .filter(|(a, _)| *a == action)
            .count();
        if survivor_handled != live_participants {
            failures.push(format!(
                "{survivor_handled} survivor handlers started, expected one per survivor ({live_participants})"
            ));
        }
    } else {
        match scenario.expected_messages {
            Some(expected) => {
                if total_sent != expected {
                    failures.push(format!(
                        "socket traffic {total_sent} != (N-1)(2P+3Q+1) = {expected}"
                    ));
                }
            }
            // No closed form (Example 2's cross-level run): the
            // zero-clamped script makes the burst structure match the
            // simulator's, so its count is still the oracle.
            None => {
                if total_sent != baseline.total_messages {
                    failures.push(format!(
                        "socket traffic {total_sent} != simulator's {}",
                        baseline.total_messages
                    ));
                }
            }
        }
        if resolved != baseline.agreed.map(|e| e.index()) {
            failures.push(format!(
                "wire resolved {resolved:?}, simulator resolved {:?}",
                baseline.agreed.map(|e| e.index())
            ));
        }
        if handled_count != scenario.participants.len() {
            failures.push(format!(
                "{handled_count} handlers started, expected one per participant ({})",
                scenario.participants.len()
            ));
        }
        if !deserters.is_empty() {
            failures.push(format!("clean run reported deserters {deserters:?}"));
        }
    }

    Ok(RunSummary {
        scenario: opts.scenario.clone(),
        num_nodes: n,
        total_sent,
        expected_messages: scenario.expected_messages,
        sim_messages: baseline.total_messages,
        resolved,
        sim_resolved: baseline.agreed.map(|e| e.index()),
        deserters,
        watchdog_violations,
        reports,
        failures,
    })
}

/// Outcome of an in-process [`run_local`] mesh.
#[derive(Debug)]
pub struct LocalOutcome {
    /// Per-node reports, in node order.
    pub reports: Vec<NodeReport>,
    /// Protocol messages across all ports.
    pub total_sent: u64,
    /// The exception resolution agreed on (asserted consistent).
    pub resolved: Option<ExceptionId>,
}

/// Runs a wire scenario with every node on its own thread of *this*
/// process — same sockets, same frames, no child processes. The
/// fixture for transport tests and benches.
///
/// # Errors
///
/// Propagates spec, socket, and barrier failures.
///
/// # Panics
///
/// Panics if a node thread panicked or the agreement invariant broke.
pub fn run_local(
    spec: &str,
    transport: Transport,
    sock_dir: &std::path::Path,
    config: &WireConfig,
    idle_timeout: Duration,
) -> Result<LocalOutcome, String> {
    let scenario = WireScenario::build(spec)?;
    let n = scenario.num_nodes;
    let mut bounds = Vec::with_capacity(n as usize);
    for i in 0..n {
        let id = NodeId::new(i);
        bounds.push(
            WireBound::bind(id, &bind_addr(transport, sock_dir, id), config.clone())
                .map_err(|e| format!("bind {i}: {e}"))?,
        );
    }
    let addrs: Vec<WireAddr> = bounds.iter().map(|b| b.local_addr().clone()).collect();
    let spec = spec.to_string();
    let start = Instant::now();
    let mut joins = Vec::with_capacity(n as usize);
    for (i, bound) in bounds.into_iter().enumerate() {
        let addrs = addrs.clone();
        let spec = spec.clone();
        let idle = idle_timeout;
        joins.push(thread::spawn(move || -> Result<NodeReport, String> {
            // Each thread rebuilds the scenario: handler tables hold
            // closures and cannot be cloned across threads.
            let scenario = WireScenario::build(&spec)?;
            let id = NodeId::new(i as u32);
            let port = bound.connect(&addrs).map_err(|e| format!("connect {id}: {e}"))?;
            port.barrier(Duration::from_secs(10))?;
            Ok(drive_wire_node(&port, &scenario, id, idle, false, None, &mut (), start))
        }));
    }
    let mut reports = Vec::with_capacity(n as usize);
    for join in joins {
        reports.push(join.join().expect("node thread panicked")?);
    }
    reports.sort_by_key(|r| r.id);
    let total_sent = reports.iter().map(|r| r.sent).sum();
    let action = scenario.action.index();
    let mut resolved: Option<ExceptionId> = None;
    for report in &reports {
        for (a, e) in &report.handled {
            if *a != action {
                continue;
            }
            let exc = ExceptionId::new(*e);
            match resolved {
                None => resolved = Some(exc),
                Some(prev) => assert_eq!(prev, exc, "agreement violated in local mesh"),
            }
        }
    }
    Ok(LocalOutcome {
        reports,
        total_sent,
        resolved,
    })
}
