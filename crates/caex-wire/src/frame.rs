//! The length-prefixed binary frame format `caex-wire` puts on a
//! socket.
//!
//! A frame wraps either a protocol message (encoded by
//! [`caex::codec`]) or one of the transport's own control messages
//! (peer identification, heartbeats, the start barrier, graceful
//! goodbye). Layout, all integers little-endian:
//!
//! ```text
//! version:u8  kind:u8  len:u32  crc:u32  payload[len]
//!
//! kind 1 Hello      payload = id:u32 ++ incarnation:u32
//! kind 2 Heartbeat  payload empty
//! kind 3 Ready      payload empty
//! kind 4 Msg        payload = from:u32 ++ sent_us:u64 ++ caex::codec::encode(msg)
//! kind 5 Bye        payload empty
//! ```
//!
//! Version 2 extended the `Msg` payload with `sent_us`, the sender's
//! local clock (microseconds since its run epoch) at the moment the
//! frame was queued. Receivers use it to estimate per-peer clock skew
//! (as `min` over observed `recv_local − sent_us` one-way delays), so
//! traces recorded on different machines can be stitched into one
//! causally-consistent timeline.
//!
//! Version 3 extends `Hello` with an *incarnation* counter: `0` on a
//! node's initial mesh-formation links, bumped for every mid-run
//! redial. An acceptor that sees a Hello with a higher incarnation
//! than the one it recorded for that peer knows the link is a
//! *reconnect* — the peer survived a transient outage and is resuming,
//! not a duplicate or stale dial — and can stand down any suspicion
//! the silence accrued. Older versions are rejected: the mesh is
//! always started as one fleet, so mixed versions indicate an operator
//! error, not a compatibility case worth masking.
//!
//! `crc` is the CRC-32 (IEEE 802.3) of the payload bytes, so a torn or
//! bit-flipped frame is rejected instead of decoded into a wrong —
//! but structurally valid — protocol message. `len` is bounded by
//! [`MAX_PAYLOAD`]; a longer prefix is rejected *before* any
//! allocation, so a corrupt length field cannot OOM the reader.

use caex::codec::{self, CodecError};
use caex::Msg;
use caex_net::NodeId;
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

/// The frame-format version this build speaks.
pub const VERSION: u8 = 3;

/// Upper bound on a frame payload. The largest legitimate payload is a
/// protocol message with two maximal (`u16`-capped) strings — well
/// under 256 KiB.
pub const MAX_PAYLOAD: u32 = 1 << 18;

const K_HELLO: u8 = 1;
const K_HEARTBEAT: u8 = 2;
const K_READY: u8 = 3;
const K_MSG: u8 = 4;
const K_BYE: u8 = 5;

/// Everything that crosses a `caex-wire` socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// First frame on every connection: the sender's node id and the
    /// link's incarnation (`0` at mesh formation, bumped per mid-run
    /// redial — a higher incarnation marks the link as a reconnect).
    Hello {
        /// The connecting node.
        id: NodeId,
        /// Dial generation of this link.
        incarnation: u32,
    },
    /// Keep-alive, sent whenever the outbound link is otherwise idle.
    Heartbeat,
    /// Start-barrier announcement: the sender has formed its mesh.
    Ready,
    /// A protocol message of §4.1.
    Msg {
        /// The sending node.
        from: NodeId,
        /// Sender-local send time, microseconds since its run epoch.
        /// Used for clock-skew estimation when stitching traces; the
        /// protocol itself never reads it.
        sent_us: u64,
        /// The message, framed via [`caex::codec`].
        msg: Msg,
    },
    /// Graceful goodbye: the sender is quiescent and leaving. A
    /// connection that ends *without* one is a crash.
    Bye,
}

/// Errors produced while reading or decoding a frame.
#[derive(Debug)]
#[non_exhaustive]
pub enum FrameError {
    /// An I/O error other than a clean end-of-stream.
    Io(io::Error),
    /// The stream ended inside a frame.
    Truncated,
    /// An unknown version byte.
    BadVersion(u8),
    /// An unknown frame kind.
    BadKind(u8),
    /// The payload checksum did not match.
    BadCrc {
        /// CRC carried by the header.
        expected: u32,
        /// CRC computed over the received payload.
        actual: u32,
    },
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The payload shape does not match the frame kind.
    Malformed(&'static str),
    /// The payload failed protocol-message decoding.
    Codec(CodecError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Truncated => f.write_str("frame truncated"),
            FrameError::BadVersion(v) => write!(f, "unknown frame version {v}"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::BadCrc { expected, actual } => {
                write!(f, "frame crc mismatch: header {expected:#010x}, payload {actual:#010x}")
            }
            FrameError::Oversized(n) => {
                write!(f, "frame payload of {n} bytes exceeds the {MAX_PAYLOAD}-byte cap")
            }
            FrameError::Malformed(what) => write!(f, "malformed frame payload: {what}"),
            FrameError::Codec(e) => write!(f, "frame payload failed message decoding: {e}"),
        }
    }
}

impl Error for FrameError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected, `0xEDB88320`), table-driven.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc_table();
    let mut crc = !0u32;
    for &byte in data {
        let idx = (crc ^ u32::from(byte)) & 0xFF;
        crc = (crc >> 8) ^ TABLE[idx as usize];
    }
    !crc
}

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

fn payload_of(frame: &Frame) -> (u8, Vec<u8>) {
    match frame {
        Frame::Hello { id, incarnation } => {
            let mut payload = Vec::with_capacity(8);
            payload.extend_from_slice(&id.index().to_le_bytes());
            payload.extend_from_slice(&incarnation.to_le_bytes());
            (K_HELLO, payload)
        }
        Frame::Heartbeat => (K_HEARTBEAT, Vec::new()),
        Frame::Ready => (K_READY, Vec::new()),
        Frame::Msg { from, sent_us, msg } => {
            let body = codec::encode(msg);
            let mut payload = Vec::with_capacity(12 + body.len());
            payload.extend_from_slice(&from.index().to_le_bytes());
            payload.extend_from_slice(&sent_us.to_le_bytes());
            payload.extend_from_slice(&body);
            (K_MSG, payload)
        }
        Frame::Bye => (K_BYE, Vec::new()),
    }
}

/// Encodes one frame into a fresh buffer.
#[must_use]
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let (kind, payload) = payload_of(frame);
    let mut out = Vec::with_capacity(10 + payload.len());
    out.push(VERSION);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Writes one frame as a single `write_all`.
///
/// # Errors
///
/// Propagates the write error.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(frame))
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Frame, FrameError> {
    let node = |bytes: &[u8]| -> Result<NodeId, FrameError> {
        let raw: [u8; 4] = bytes
            .try_into()
            .map_err(|_| FrameError::Malformed("node id is not 4 bytes"))?;
        Ok(NodeId::new(u32::from_le_bytes(raw)))
    };
    match kind {
        K_HELLO => {
            if payload.len() != 8 {
                return Err(FrameError::Malformed("hello is not id+incarnation (8 bytes)"));
            }
            Ok(Frame::Hello {
                id: node(&payload[..4])?,
                incarnation: u32::from_le_bytes(payload[4..8].try_into().expect("4 bytes")),
            })
        }
        K_HEARTBEAT | K_READY | K_BYE => {
            if !payload.is_empty() {
                return Err(FrameError::Malformed("control frame carries a payload"));
            }
            Ok(match kind {
                K_HEARTBEAT => Frame::Heartbeat,
                K_READY => Frame::Ready,
                _ => Frame::Bye,
            })
        }
        K_MSG => {
            if payload.len() < 12 {
                return Err(FrameError::Malformed("msg frame shorter than its from+sent_us fields"));
            }
            let from = node(&payload[..4])?;
            let sent_us =
                u64::from_le_bytes(payload[4..12].try_into().expect("8 bytes"));
            let msg = codec::decode(&bytes::Bytes::copy_from_slice(&payload[12..]))
                .map_err(FrameError::Codec)?;
            Ok(Frame::Msg { from, sent_us, msg })
        }
        other => Err(FrameError::BadKind(other)),
    }
}

/// Reads one frame from a blocking stream.
///
/// # Errors
///
/// [`FrameError::Truncated`] on a clean or mid-frame end-of-stream;
/// the header/payload validation errors otherwise.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, FrameError> {
    let mut header = [0u8; 10];
    r.read_exact(&mut header)?;
    let version = header[0];
    if version != VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let kind = header[1];
    let len = u32::from_le_bytes(header[2..6].try_into().expect("4 bytes"));
    let expected = u32::from_le_bytes(header[6..10].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let actual = crc32(&payload);
    if actual != expected {
        return Err(FrameError::BadCrc { expected, actual });
    }
    decode_payload(kind, &payload)
}

/// Decodes exactly one frame from a byte slice, returning it with the
/// number of bytes consumed.
///
/// # Errors
///
/// [`FrameError::Truncated`] if the slice ends inside the frame; the
/// same validation errors as [`read_frame`] otherwise.
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), FrameError> {
    let mut cursor = io::Cursor::new(bytes);
    let frame = read_frame(&mut cursor)?;
    #[allow(clippy::cast_possible_truncation)] // cursor position ≤ slice length
    Ok((frame, cursor.position() as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use caex_action::ActionId;
    use caex_tree::{Exception, ExceptionId};

    fn sample_frames() -> Vec<Frame> {
        let msg = Msg::Exception {
            action: ActionId::new(2),
            from: NodeId::new(1),
            exc: Exception::new(ExceptionId::new(7)).with_origin("O1"),
        };
        vec![
            Frame::Hello { id: NodeId::new(3), incarnation: 2 },
            Frame::Heartbeat,
            Frame::Ready,
            Frame::Msg { from: NodeId::new(1), sent_us: 12_345, msg },
            Frame::Bye,
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            let (decoded, used) = decode_frame(&bytes).expect("decodes");
            assert_eq!(decoded, frame);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The classic CRC-32 check: crc32("123456789") == 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streams_of_frames_read_back_in_order() {
        let frames = sample_frames();
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut cursor = io::Cursor::new(buf);
        for f in &frames {
            assert_eq!(&read_frame(&mut cursor).unwrap(), f);
        }
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Truncated)));
    }

    #[test]
    fn corrupted_payload_fails_the_crc() {
        let mut bytes = encode_frame(&Frame::Hello { id: NodeId::new(9), incarnation: 0 });
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(decode_frame(&bytes), Err(FrameError::BadCrc { .. })));
    }

    #[test]
    fn unknown_version_and_kind_are_rejected() {
        let mut bytes = encode_frame(&Frame::Heartbeat);
        bytes[0] = 99;
        assert!(matches!(decode_frame(&bytes), Err(FrameError::BadVersion(99))));

        let mut bytes = encode_frame(&Frame::Heartbeat);
        bytes[1] = 42; // kind is outside the crc, so only the kind check fires
        assert!(matches!(decode_frame(&bytes), Err(FrameError::BadKind(42))));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut bytes = encode_frame(&Frame::Heartbeat);
        bytes[2..6].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_frame(&bytes), Err(FrameError::Oversized(u32::MAX))));
    }

    #[test]
    fn truncation_is_detected_at_every_cut() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            for cut in 0..bytes.len() {
                assert!(
                    matches!(decode_frame(&bytes[..cut]), Err(FrameError::Truncated)),
                    "{frame:?} decoded from {cut}/{} bytes",
                    bytes.len()
                );
            }
        }
    }
}
