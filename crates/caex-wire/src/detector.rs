//! Phi-accrual failure estimation (Hayashibara et al., SRDS 2004,
//! simplified to an exponential inter-arrival model).
//!
//! A fixed crash timeout forces one global answer to "how long is too
//! long?" — too short and a latency spike amputates a healthy peer,
//! too long and every real crash stalls resolution. The accrual
//! detector answers on a *continuous* scale instead: each peer's
//! heartbeat inter-arrival history yields a mean interval, and the
//! current silence is scored as
//!
//! ```text
//! φ(silence) = silence / (mean · ln 10)
//! ```
//!
//! which is `−log10` of the probability that an exponentially
//! distributed inter-arrival with that mean exceeds `silence`. φ = 1
//! means "this silence had a 10% chance under normal jitter"; φ = 8
//! means one in 10⁸. Consumers pick two thresholds: a low one to
//! *suspect* (informational, reversible) and a high one to *confirm*
//! (the peer is excluded as a §4.2 deserter). A latency spike raises
//! suspicion and then subsides; only sustained silence accrues enough
//! φ to confirm.
//!
//! The mean is floored at the configured heartbeat interval, so a
//! burst of back-to-back frames (e.g. a socket buffer draining after a
//! healed partition) cannot shrink the mean toward zero and turn the
//! next ordinary gap into a false alarm.

use std::collections::VecDeque;
use std::f64::consts::LN_10;

/// Sliding-window estimator of one peer's heartbeat inter-arrival
/// distribution, queried as a suspicion level φ.
#[derive(Debug, Clone)]
pub struct PhiEstimator {
    /// Most recent inter-arrival gaps, seconds, oldest first.
    intervals: VecDeque<f64>,
    /// Window capacity; older samples fall off.
    window: usize,
    /// Lower bound on the estimated mean, seconds (the heartbeat
    /// interval: gaps can't meaningfully be shorter than the cadence).
    floor: f64,
}

impl PhiEstimator {
    /// A fresh estimator with the given window capacity and mean floor
    /// (both from [`crate::wire::WireConfig`]).
    #[must_use]
    pub fn new(window: usize, floor: f64) -> PhiEstimator {
        PhiEstimator {
            intervals: VecDeque::with_capacity(window.max(1)),
            window: window.max(1),
            floor: floor.max(1e-6),
        }
    }

    /// Records one observed inter-arrival gap, seconds. Non-finite or
    /// negative samples are ignored (a clock hiccup is not evidence).
    pub fn observe(&mut self, interval_secs: f64) {
        if !interval_secs.is_finite() || interval_secs < 0.0 {
            return;
        }
        if self.intervals.len() == self.window {
            self.intervals.pop_front();
        }
        self.intervals.push_back(interval_secs);
    }

    /// Samples currently in the window.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.intervals.len()
    }

    /// The estimated mean inter-arrival, seconds — the window average,
    /// floored at the heartbeat interval. With no samples yet the
    /// floor itself is the estimate, so a peer that never spoke still
    /// accrues suspicion at the configured cadence.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.intervals.is_empty() {
            return self.floor;
        }
        #[allow(clippy::cast_precision_loss)] // window sizes are small
        let avg = self.intervals.iter().sum::<f64>() / self.intervals.len() as f64;
        avg.max(self.floor)
    }

    /// φ after `silence_secs` of silence: `silence / (mean · ln 10)`.
    /// Monotonically non-decreasing in silence; zero at zero silence.
    #[must_use]
    pub fn phi(&self, silence_secs: f64) -> f64 {
        silence_secs.max(0.0) / (self.mean() * LN_10)
    }

    /// The silence, seconds, at which φ reaches `threshold` under the
    /// current mean — the fixed-timeout equivalent of a φ threshold.
    #[must_use]
    pub fn silence_for(&self, threshold: f64) -> f64 {
        threshold * self.mean() * LN_10
    }
}

/// The φ threshold whose detection latency matches a fixed crash
/// timeout under nominal heartbeat cadence: `timeout / (heartbeat ·
/// ln 10)`. This is how the legacy `--crash-timeout-ms` flag maps onto
/// the accrual detector.
#[must_use]
pub fn phi_for_timeout(timeout_secs: f64, heartbeat_secs: f64) -> f64 {
    timeout_secs / (heartbeat_secs.max(1e-6) * LN_10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_estimator_accrues_at_the_floor_cadence() {
        let e = PhiEstimator::new(16, 0.05);
        assert!((e.mean() - 0.05).abs() < 1e-12);
        // One heartbeat of silence is φ = 1/ln10 ≈ 0.43 — nowhere near
        // suspicion, let alone confirmation.
        assert!(e.phi(0.05) < 0.5);
        assert!(e.phi(1.0) > 8.0, "a second of silence at 50ms cadence confirms");
    }

    #[test]
    fn window_slides_and_mean_tracks_recent_history() {
        let mut e = PhiEstimator::new(4, 0.01);
        for _ in 0..4 {
            e.observe(0.1);
        }
        assert!((e.mean() - 0.1).abs() < 1e-12);
        // Four faster samples push the slow ones out entirely.
        for _ in 0..4 {
            e.observe(0.02);
        }
        assert!((e.mean() - 0.02).abs() < 1e-12);
        assert_eq!(e.samples(), 4);
    }

    #[test]
    fn mean_is_floored_against_burst_drains() {
        let mut e = PhiEstimator::new(8, 0.05);
        // A buffered backlog drains as near-zero gaps (healed
        // partition); the floor keeps φ calibrated to the cadence.
        for _ in 0..8 {
            e.observe(0.0001);
        }
        assert!((e.mean() - 0.05).abs() < 1e-12);
        assert!(e.phi(0.06) < 1.0);
    }

    #[test]
    fn bad_samples_are_ignored() {
        let mut e = PhiEstimator::new(8, 0.05);
        e.observe(f64::NAN);
        e.observe(f64::INFINITY);
        e.observe(-1.0);
        assert_eq!(e.samples(), 0);
    }

    #[test]
    fn timeout_mapping_round_trips() {
        // The harness's legacy tuning: 400ms timeout on a 40ms
        // heartbeat maps to φ ≈ 4.34, and an empty estimator with a
        // 40ms floor reaches that φ at exactly 400ms of silence.
        let phi = phi_for_timeout(0.4, 0.04);
        let e = PhiEstimator::new(16, 0.04);
        assert!((e.silence_for(phi) - 0.4).abs() < 1e-9);
        assert!(e.phi(0.399) < phi);
        assert!(e.phi(0.401) > phi);
    }

    /// Milli-units → seconds; the vendored proptest shim only offers
    /// integer range strategies, so the properties draw millis.
    fn sec(millis: u32) -> f64 {
        f64::from(millis) / 1000.0
    }

    proptest! {
        /// φ is monotone in silence: more silence never lowers
        /// suspicion.
        #[test]
        fn phi_is_monotone_in_silence(
            gaps in prop::collection::vec(1u32..500, 0..32),
            s1 in 0u32..10_000,
            s2 in 0u32..10_000,
        ) {
            let mut e = PhiEstimator::new(16, 0.05);
            for g in gaps {
                e.observe(sec(g));
            }
            let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
            prop_assert!(e.phi(sec(lo)) <= e.phi(sec(hi)));
        }

        /// Under jittered heartbeats bounded by `[h, 2h]`, φ is
        /// bounded both ways: at most `silence/(h·ln10)` (the floor
        /// bound) and at least `silence/(2h·ln10)` (the slowest
        /// plausible mean) — the estimator can't be gamed into either
        /// paranoia or complacency by jitter alone.
        #[test]
        fn phi_is_bounded_under_jittered_heartbeats(
            gaps in prop::collection::vec(50u32..100, 1..64),
            silence in 0u32..5_000,
        ) {
            let h = 0.05;
            let silence = sec(silence);
            let mut e = PhiEstimator::new(64, h);
            for g in gaps {
                e.observe(sec(g));
            }
            prop_assert!(e.phi(silence) <= silence / (h * LN_10) + 1e-9);
            prop_assert!(e.phi(silence) >= silence / (2.0 * h * LN_10) - 1e-9);
        }

        /// The delay-spike palette: mostly nominal gaps with occasional
        /// spikes up to 5× the cadence — the healed-partition latency
        /// profile `FaultPlan::with_healing_partition` produces, where
        /// deferred traffic arrives as a late burst. No gap in the
        /// palette may ever reach the default confirmation threshold:
        /// spikes suspect, only death confirms.
        #[test]
        fn delay_spikes_never_reach_confirmation(
            palette in prop::collection::vec((0u8..5, 0u32..1_000), 1..128),
        ) {
            let h = 0.05;
            let phi_confirm = 8.0;
            let mut e = PhiEstimator::new(64, h);
            // 4-in-5 nominal heartbeat jitter (40..60ms), 1-in-5
            // spike up to 5× the cadence (100..250ms).
            let palette = palette.into_iter().map(|(pick, frac)| {
                let frac = f64::from(frac) / 1000.0;
                if pick < 4 { 0.04 + frac * 0.02 } else { 0.1 + frac * 0.15 }
            });
            for gap in palette {
                // φ evaluated at the worst moment: just before the
                // late frame finally lands.
                prop_assert!(
                    e.phi(gap) < phi_confirm,
                    "gap {gap} confirmed at φ {}", e.phi(gap)
                );
                e.observe(gap);
            }
        }
    }
}
