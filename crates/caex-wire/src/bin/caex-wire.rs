//! The `caex-wire` binary: run the §4.2 resolution algorithm across
//! OS processes over real sockets.
//!
//! ```text
//! # whole run, one command (spawns one child process per node):
//! caex-wire --role coordinator --scenario example1
//!
//! # same, also writing the skew-stitched merged trace for
//! # `caex-report`:
//! caex-wire --role coordinator --scenario example2 --obs-out ex2.jsonl
//!
//! # random (n, p, q) grid, each cell a fresh multi-process mesh:
//! caex-wire --role coordinator --grid 4 --seed 7
//!
//! # transient partition: SIGSTOP node 3 for 1s mid-run, then heal —
//! # the run must still satisfy the §4.4 law with zero deserters:
//! caex-wire --role coordinator --scenario example1 --partition 3 --partition-ms 1000
//!
//! # what the coordinator spawns under the hood:
//! caex-wire --role participant --scenario example1 --id 2 \
//!           --rendezvous 127.0.0.1:4000
//! ```
//!
//! The coordinator prints one `CAEX-WIRE-SUMMARY {json}` line per run
//! and exits nonzero if any §4.4/§4.5 assertion failed. Participants
//! print one `CAEX-WIRE-REPORT {json}` line each.

use caex::analysis;
use caex_net::NodeId;
use caex_wire::harness::{
    run_coordinator, run_participant, CoordinatorOptions, CrashMode, CrashPoint,
    ParticipantOptions, Transport, SUMMARY_PREFIX,
};
use caex_wire::wire::WireConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::time::Duration;

/// Parsed command line; every flag is `--name value`.
struct Args {
    map: Vec<(String, String)>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut map = Vec::new();
        let mut iter = std::env::args().skip(1);
        while let Some(flag) = iter.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{flag}`"));
            };
            let value = iter
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            map.push((name.to_string(), value));
        }
        Ok(Args { map })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.map
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn parse_as<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        self.get(name)
            .map(|v| {
                v.parse::<T>()
                    .map_err(|e| format!("bad value for --{name}: {e}"))
            })
            .transpose()
    }

    fn millis(&self, name: &str) -> Result<Option<Duration>, String> {
        Ok(self.parse_as::<u64>(name)?.map(Duration::from_millis))
    }
}

fn wire_config(args: &Args) -> Result<WireConfig, String> {
    let mut config = WireConfig::default();
    if let Some(hb) = args.millis("heartbeat-ms")? {
        config.heartbeat_interval = hb;
    }
    if let Some(phi) = args.parse_as::<f64>("phi-suspect")? {
        config.phi_suspect = phi;
    }
    if let Some(phi) = args.parse_as::<f64>("phi-confirm")? {
        config.phi_confirm = phi;
    }
    if let Some(window) = args.parse_as::<usize>("phi-window")? {
        config.phi_window = window;
    }
    if let Some(backoff) = args.millis("reconnect-backoff-ms")? {
        config.reconnect_backoff = backoff;
    }
    // Legacy alias, applied last so it wins: a fixed crash timeout
    // becomes the equivalent `phi_confirm` at the chosen heartbeat.
    if let Some(ct) = args.millis("crash-timeout-ms")? {
        config = config.with_crash_timeout(ct);
    }
    Ok(config)
}

fn participant_main(args: &Args) -> Result<(), String> {
    let id = args
        .parse_as::<u32>("id")?
        .ok_or("--id is required for participants")?;
    let rendezvous = args
        .parse_as::<std::net::SocketAddr>("rendezvous")?
        .ok_or("--rendezvous is required for participants")?;
    let opts = ParticipantOptions {
        id: NodeId::new(id),
        scenario: args
            .get("scenario")
            .ok_or("--scenario is required")?
            .to_string(),
        transport: args.parse_as("transport")?.unwrap_or(Transport::Tcp),
        sock_dir: args
            .get("sock-dir")
            .map_or_else(std::env::temp_dir, PathBuf::from),
        rendezvous,
        obs: args.parse_as("obs")?,
        config: wire_config(args)?,
        idle_timeout: args
            .millis("idle-timeout-ms")?
            .unwrap_or(Duration::from_millis(300)),
        crash_after: args.millis("crash-after-ms")?,
        crash_mode: args.parse_as("crash-mode")?.unwrap_or(CrashMode::Exit),
        crash_point: args.parse_as("crash-point")?.unwrap_or(CrashPoint::Barrier),
        partition_hold: matches!(args.get("partition-hold"), Some("true" | "1" | "yes")),
    };
    run_participant(&opts)
}

fn coordinator_options(args: &Args, scenario: String) -> Result<CoordinatorOptions, String> {
    let binary = std::env::current_exe().map_err(|e| format!("locating own binary: {e}"))?;
    let mut opts = CoordinatorOptions::new(scenario, binary);
    if let Some(t) = args.parse_as("transport")? {
        opts.transport = t;
    }
    if let Some(dir) = args.get("sock-dir") {
        opts.sock_dir = PathBuf::from(dir);
    }
    if let Some(no_obs) = args.get("no-obs") {
        opts.obs = !matches!(no_obs, "true" | "1" | "yes");
    }
    if let Some(path) = args.get("obs-out") {
        opts.obs_out = Some(PathBuf::from(path));
    }
    if let Some(victim) = args.parse_as::<u32>("crash")? {
        let mode = args.parse_as("crash-mode")?.unwrap_or(CrashMode::Exit);
        opts = opts.with_crash(NodeId::new(victim), mode);
        if let Some(after) = args.millis("crash-after-ms")? {
            opts.crash_after = after;
        }
        if let Some(point) = args.parse_as("crash-point")? {
            opts.crash_point = point;
        }
        if let Some(resume) = args.millis("resume-after-ms")? {
            opts.resume_after = Some(resume);
        }
    }
    if let Some(victim) = args.parse_as::<u32>("partition")? {
        let outage = args
            .millis("partition-ms")?
            .unwrap_or(Duration::from_millis(1000));
        opts = opts.with_partition(NodeId::new(victim), outage);
    }
    opts.config.heartbeat_interval = args
        .millis("heartbeat-ms")?
        .unwrap_or(opts.config.heartbeat_interval);
    if let Some(phi) = args.parse_as::<f64>("phi-suspect")? {
        opts.config.phi_suspect = phi;
    }
    if let Some(phi) = args.parse_as::<f64>("phi-confirm")? {
        opts.config.phi_confirm = phi;
    }
    if let Some(window) = args.parse_as::<usize>("phi-window")? {
        opts.config.phi_window = window;
    }
    if let Some(backoff) = args.millis("reconnect-backoff-ms")? {
        opts.config.reconnect_backoff = backoff;
    }
    if let Some(ct) = args.millis("crash-timeout-ms")? {
        opts.config = opts.config.with_crash_timeout(ct);
    }
    if let Some(idle) = args.millis("idle-timeout-ms")? {
        opts.idle_timeout = idle;
    }
    if let Some(deadline) = args.millis("deadline-ms")? {
        opts.deadline = deadline;
    }
    Ok(opts)
}

/// One coordinated run; prints the summary line and reports success.
fn run_one(args: &Args, scenario: String) -> Result<bool, String> {
    let opts = coordinator_options(args, scenario)?;
    let summary = run_coordinator(&opts)?;
    println!("{SUMMARY_PREFIX}{}", summary.to_json());
    for failure in &summary.failures {
        eprintln!("caex-wire: FAIL [{}]: {failure}", summary.scenario);
    }
    Ok(summary.ok())
}

/// Random `(n, p, q)` grid: `count` cells, each a full multi-process
/// mesh over localhost, each held to `(N-1)(2P+3Q+1)`.
fn grid_main(args: &Args, count: u32) -> Result<bool, String> {
    let seed = args.parse_as::<u64>("seed")?.unwrap_or(42);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut all_ok = true;
    for cell in 0..count {
        let n = rng.gen_range(2..=5u32);
        let p = rng.gen_range(1..=n);
        let q = rng.gen_range(0..=(n - p));
        let spec = format!("general:{n},{p},{q}");
        eprintln!(
            "caex-wire: grid cell {}/{count}: {spec} (expect {} messages)",
            cell + 1,
            analysis::messages_general(u64::from(n), u64::from(p), u64::from(q))
        );
        all_ok &= run_one(args, spec)?;
    }
    Ok(all_ok)
}

fn main() {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("caex-wire: {e}");
            std::process::exit(64);
        }
    };
    let outcome = match args.get("role").unwrap_or("coordinator") {
        "participant" => participant_main(&args).map(|()| true),
        "coordinator" => {
            if let Ok(Some(count)) = args.parse_as::<u32>("grid") {
                grid_main(&args, count)
            } else {
                match args.get("scenario") {
                    Some(s) => run_one(&args, s.to_string()),
                    None => Err("--scenario (or --grid N) is required".to_string()),
                }
            }
        }
        other => Err(format!("unknown role `{other}`")),
    };
    match outcome {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("caex-wire: {e}");
            std::process::exit(1);
        }
    }
}
