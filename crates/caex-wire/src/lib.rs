//! Real-socket transport for the §4.2 exception-resolution algorithm.
//!
//! Everything else in the workspace runs the resolution protocol
//! inside one process — over the discrete-event [`caex_net::SimNet`]
//! or the in-process channel mesh [`caex_net::ThreadNet`]. This crate
//! supplies the third transport: a fully connected mesh of **real TCP
//! or Unix-domain sockets**, one OS process per participant, built
//! from `std::net`, threads and blocking I/O only.
//!
//! The layering mirrors the paper's claim that the resolution
//! algorithm is transport-agnostic:
//!
//! - [`frame`] — the length-prefixed, CRC-checked binary frame codec
//!   that carries [`caex::Msg`] values (via the `caex::codec` payload
//!   encoding) plus the control frames the mesh itself needs (hello,
//!   heartbeat, ready, bye).
//! - [`detector`] — the phi-accrual failure estimator: per-peer
//!   heartbeat inter-arrival history scored as a continuous suspicion
//!   level φ, with separate *suspect* and *confirm* thresholds.
//! - [`wire`] — [`wire::WirePort`], a [`caex_net::FifoPort`]
//!   implementation over the socket mesh: per-peer writer threads,
//!   heartbeats, reconnect-and-resume with incarnation-tagged
//!   re-handshakes, and two-stage (`Suspected → Confirmed`) failure
//!   detection that surfaces a confirmed-dead peer as a §4.2
//!   *deserter* through [`caex_net::FifoPort::take_crashed`] and a
//!   transient outage through `take_suspected` / `take_rejoined`.
//! - [`scenario`] — the paper workloads (Examples 1 and 2, and the
//!   general `(n, p, q)` family) re-packaged for wall-clock execution,
//!   with the §4.4 message-count law attached where it applies.
//! - [`harness`] — multi-process orchestration: a coordinator that
//!   spawns one `caex-wire` binary per participant, a line-based
//!   rendezvous for address exchange, report aggregation, and the
//!   §4.4/§4.5 assertions against real socket traffic.
//!
//! The `caex-wire` binary (`--role coordinator|participant`) drives
//! all of it from the command line; see the README's "Wire transport"
//! walkthrough.

pub mod detector;
pub mod frame;
pub mod harness;
pub mod scenario;
pub mod wire;

pub use detector::PhiEstimator;
pub use frame::{Frame, FrameError};
pub use harness::{CoordinatorOptions, CrashMode, RunSummary, Transport};
pub use scenario::WireScenario;
pub use wire::{WireAddr, WireConfig, WireBound, WirePort};
