//! The socket mesh: a [`WirePort`] is one node's endpoint in a fully
//! connected network of framed TCP or Unix-domain connections, and
//! implements the same [`FifoPort`] contract as the in-process
//! [`caex_net::NodePort`] — so [`caex::drive::drive_node`] runs the
//! §4.2 resolution algorithm over it unchanged, from separate OS
//! processes.
//!
//! Topology: every ordered pair of nodes gets one simplex connection.
//! Node `i` dials each peer's listener for its *outbound* link
//! (announcing itself with [`Frame::Hello`]) and accepts `n − 1`
//! *inbound* links. Per-sender FIFO holds because each outbound link
//! has exactly one writer thread draining a FIFO channel into one TCP
//! stream.
//!
//! Failure detection: an idle outbound link carries a
//! [`Frame::Heartbeat`] every [`WireConfig::heartbeat_interval`]. The
//! receiving side timestamps every frame and feeds the gaps to a
//! per-peer [`PhiEstimator`]; the current silence is scored as a
//! continuous suspicion level φ with **two** thresholds:
//!
//! - φ ≥ [`WireConfig::phi_suspect`] — the peer is *Suspected*:
//!   reported (re-reportably) by [`FifoPort::take_suspected`], which
//!   the drive loop folds into `Participant::on_suspect` — purely
//!   informational, nothing is excluded. When the silence ends the
//!   flap is reported by [`FifoPort::take_rejoined`] and the
//!   participant re-forwards any commit the peer missed.
//! - φ ≥ [`WireConfig::phi_confirm`] **on two successive detector
//!   polls at least one heartbeat apart** — the peer is *Confirmed*
//!   dead: reported once by [`FifoPort::take_crashed`], which the
//!   drive loop folds into [`caex::Participant::on_deserter`], so a
//!   crashed participant surfaces as a §4.2 *deserter* instead of
//!   hanging resolution. The second poll protects a process resuming
//!   from `SIGSTOP`: its `last_seen` clocks are uniformly stale until
//!   its reader threads drain the buffered heartbeats, and one
//!   heartbeat of grace is exactly the time that takes.
//!
//! Hard evidence skips the accrual: a connection that ends without a
//! [`Frame::Bye`] (and without a newer-incarnation replacement link),
//! or a writer whose redial rounds are exhausted, confirms
//! immediately.
//!
//! Reconnect-and-resume: a writer that loses its connection re-dials
//! with [`WireConfig::reconnect_backoff`] (doubling per round),
//! re-handshakes with an incarnation-bumped [`Frame::Hello`], replays
//! the in-flight frame, and carries on draining its FIFO — the
//! outbound queue survives the outage. The accepting side sees the
//! higher incarnation, stands its suspicion down, and reports the
//! rejoin. Recovery traffic is accounted in [`NetStats`] under the
//! `reconnect` / `suspicion_flap` / `replayed_frame` recovery kinds.

use crate::detector::PhiEstimator;
use crate::frame::{read_frame, write_frame, Frame};
use caex::Event;
use caex_net::{FifoPort, Kinded, NetStats, NodeId, RecvTimeoutError};
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// A mesh endpoint address: TCP socket or Unix-domain socket path.
///
/// Rendered/parsed as `tcp://127.0.0.1:4000` or `unix:/tmp/n0.sock`,
/// so address maps travel through CLI arguments and rendezvous lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireAddr {
    /// A TCP endpoint.
    Tcp(SocketAddr),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl fmt::Display for WireAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireAddr::Tcp(a) => write!(f, "tcp://{a}"),
            WireAddr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

impl FromStr for WireAddr {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(rest) = s.strip_prefix("tcp://") {
            rest.parse()
                .map(WireAddr::Tcp)
                .map_err(|e| format!("bad tcp address `{rest}`: {e}"))
        } else if let Some(rest) = s.strip_prefix("unix:") {
            Ok(WireAddr::Unix(PathBuf::from(rest)))
        } else {
            Err(format!("address `{s}` has neither a tcp:// nor a unix: scheme"))
        }
    }
}

/// Transport tuning: timeouts, heartbeat cadence, reconnect policy.
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// Per-attempt TCP connect timeout.
    pub connect_timeout: Duration,
    /// Dial attempts (initial connect and mid-run reconnect alike).
    pub dial_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub dial_backoff: Duration,
    /// An idle outbound link sends a heartbeat this often.
    pub heartbeat_interval: Duration,
    /// Suspicion threshold: φ at which a silent peer becomes
    /// *Suspected* (informational, reversible).
    pub phi_suspect: f64,
    /// Confirmation threshold: φ at which a silent peer becomes
    /// *Confirmed* dead (after holding for two polls one heartbeat
    /// apart) and is reported as a §4.2 deserter.
    pub phi_confirm: f64,
    /// Inter-arrival samples kept per peer by the phi estimator.
    pub phi_window: usize,
    /// Backoff before a writer's first mid-run redial round; doubles
    /// per round, [`WireConfig::dial_retries`] rounds total.
    pub reconnect_backoff: Duration,
    /// Hard cap on any single blocking read (self-cleaning readers).
    pub read_timeout: Duration,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            connect_timeout: Duration::from_secs(2),
            dial_retries: 6,
            dial_backoff: Duration::from_millis(25),
            heartbeat_interval: Duration::from_millis(50),
            phi_suspect: 1.0,
            phi_confirm: 8.0,
            phi_window: 64,
            reconnect_backoff: Duration::from_millis(25),
            read_timeout: Duration::from_secs(10),
        }
    }
}

impl WireConfig {
    /// Maps a legacy fixed crash timeout onto the accrual detector:
    /// sets [`WireConfig::phi_confirm`] so that, at nominal heartbeat
    /// cadence, confirmation latency matches `timeout`. Call *after*
    /// setting [`WireConfig::heartbeat_interval`].
    #[must_use]
    pub fn with_crash_timeout(mut self, timeout: Duration) -> Self {
        self.phi_confirm = crate::detector::phi_for_timeout(
            timeout.as_secs_f64(),
            self.heartbeat_interval.as_secs_f64(),
        );
        self
    }
}

enum WireListener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl WireListener {
    fn set_nonblocking(&self, v: bool) -> io::Result<()> {
        match self {
            WireListener::Tcp(l) => l.set_nonblocking(v),
            WireListener::Unix(l) => l.set_nonblocking(v),
        }
    }

    fn accept(&self) -> io::Result<WireStream> {
        match self {
            WireListener::Tcp(l) => l.accept().map(|(s, _)| WireStream::Tcp(s)),
            WireListener::Unix(l) => l.accept().map(|(s, _)| WireStream::Unix(s)),
        }
    }
}

enum WireStream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl WireStream {
    fn tune(&self, read_timeout: Duration) {
        match self {
            WireStream::Tcp(s) => {
                let _ = s.set_nonblocking(false);
                let _ = s.set_nodelay(true);
                let _ = s.set_read_timeout(Some(read_timeout));
            }
            WireStream::Unix(s) => {
                let _ = s.set_nonblocking(false);
                let _ = s.set_read_timeout(Some(read_timeout));
            }
        }
    }
}

impl Read for WireStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            WireStream::Tcp(s) => s.read(buf),
            WireStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for WireStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            WireStream::Tcp(s) => s.write(buf),
            WireStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.flush(),
            WireStream::Unix(s) => s.flush(),
        }
    }
}

/// Shared liveness bookkeeping, updated by reader/writer threads and
/// consumed by the detector poll behind [`FifoPort::take_crashed`] /
/// `take_suspected` / `take_rejoined`, and by the barrier.
#[derive(Default)]
struct MeshState {
    last_seen: HashMap<NodeId, Instant>,
    ready: HashSet<NodeId>,
    departed: HashSet<NodeId>,
    dead: HashSet<NodeId>,
    reported: HashSet<NodeId>,
    /// Per-peer phi-accrual estimators, fed by reader threads.
    estimators: HashMap<NodeId, PhiEstimator>,
    /// Peers currently past the suspicion threshold.
    suspected: HashSet<NodeId>,
    /// First poll instant at which φ crossed the confirmation
    /// threshold; confirmation needs a second crossing one heartbeat
    /// later (see the module docs on `SIGSTOP` resume).
    confirm_at: HashMap<NodeId, Instant>,
    /// Highest Hello incarnation seen per peer. A higher re-handshake
    /// marks a reconnect; a reader whose link breaks only marks the
    /// peer dead if no newer link has handshaked since.
    incarnations: HashMap<NodeId, u32>,
    /// Undrained `Suspected` transitions for `take_suspected`.
    suspect_events: Vec<NodeId>,
    /// Undrained rejoin transitions for `take_rejoined`.
    rejoin_events: Vec<NodeId>,
    /// Undrained `Confirmed` transitions for `take_crashed`.
    crashed_events: Vec<NodeId>,
    /// Per-peer minimum observed `recv_local_us − sent_us` over all
    /// protocol frames: one-way delay plus clock offset. The minimum
    /// is the tightest upper bound on the peer's clock being *behind*
    /// ours, and the standard NTP-style skew estimator under the
    /// assumption that at least one frame crossed near the floor
    /// latency.
    skew_min: HashMap<NodeId, i64>,
}

/// A bound-but-unconnected endpoint: the listener exists (so peers can
/// already dial it) but the mesh is not formed. Splitting bind from
/// connect lets a harness bind every listener *before* distributing
/// the address map, which removes every port race from mesh formation.
pub struct WireBound {
    id: NodeId,
    listener: WireListener,
    addr: WireAddr,
    config: WireConfig,
}

impl fmt::Debug for WireBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WireBound")
            .field("id", &self.id)
            .field("addr", &self.addr)
            .finish()
    }
}

impl WireBound {
    /// Binds `id`'s listener. For TCP use port `0` to let the OS pick;
    /// for Unix sockets a stale path is removed first.
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind(id: NodeId, addr: &WireAddr, config: WireConfig) -> io::Result<WireBound> {
        let (listener, addr) = match addr {
            WireAddr::Tcp(sa) => {
                let l = TcpListener::bind(sa)?;
                let actual = l.local_addr()?;
                (WireListener::Tcp(l), WireAddr::Tcp(actual))
            }
            WireAddr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                (WireListener::Unix(l), WireAddr::Unix(path.clone()))
            }
        };
        Ok(WireBound { id, listener, addr, config })
    }

    /// The bound address (with the OS-assigned port resolved) — hand
    /// it to the peers.
    #[must_use]
    pub fn local_addr(&self) -> &WireAddr {
        &self.addr
    }

    /// Forms the mesh: dials every peer in `addrs` (indexed by node
    /// id; the own entry is ignored) and starts accepting the `n − 1`
    /// inbound links.
    ///
    /// # Errors
    ///
    /// Fails if any initial dial exhausts its retries — mesh formation
    /// must be complete before the protocol starts.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` has no entry for this node's id.
    pub fn connect(self, addrs: &[WireAddr]) -> io::Result<WirePort> {
        let WireBound { id, listener, addr: _, config } = self;
        assert!(
            (id.index() as usize) < addrs.len(),
            "address map of {} entries lacks node {id}",
            addrs.len()
        );
        let num_nodes = addrs.len() as u32;
        let state = Arc::new(Mutex::new(MeshState::default()));
        let stats = Arc::new(Mutex::new(NetStats::default()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let epoch = Arc::new(Mutex::new(Instant::now()));
        // Dial generation, shared by every writer: 0 at mesh
        // formation, bumped per mid-run redial so acceptors can tell a
        // reconnect from a stale or duplicate link.
        let incarnation = Arc::new(AtomicU32::new(0));
        let (inbox_tx, inbox_rx) = channel::unbounded();

        // Inbound half: accept until shutdown, one reader per link.
        listener.set_nonblocking(true)?;
        {
            let state = Arc::clone(&state);
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            let inbox_tx: Sender<(NodeId, Event)> = inbox_tx.clone();
            let epoch = Arc::clone(&epoch);
            let config_cl = config.clone();
            thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok(stream) => {
                            stream.tune(config_cl.read_timeout);
                            let state = Arc::clone(&state);
                            let stats = Arc::clone(&stats);
                            let inbox_tx = inbox_tx.clone();
                            let epoch = Arc::clone(&epoch);
                            let config_cl = config_cl.clone();
                            thread::spawn(move || {
                                reader_loop(stream, &state, &stats, &inbox_tx, &epoch, &config_cl);
                            });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => return,
                    }
                }
            });
        }

        // Outbound half: dial each peer, one writer thread per link.
        let mut senders = HashMap::new();
        let mut writers = Vec::new();
        for (peer_idx, peer_addr) in addrs.iter().enumerate() {
            let peer = NodeId::new(peer_idx as u32);
            if peer == id {
                continue;
            }
            let stream = dial(peer_addr, &config, id, 0)?;
            let (tx, rx) = channel::unbounded();
            let peer_addr = peer_addr.clone();
            let config_cl = config.clone();
            let state_cl = Arc::clone(&state);
            let stats_cl = Arc::clone(&stats);
            let incarnation_cl = Arc::clone(&incarnation);
            writers.push(thread::spawn(move || {
                writer_loop(
                    id,
                    peer,
                    stream,
                    &peer_addr,
                    &config_cl,
                    &rx,
                    &state_cl,
                    &stats_cl,
                    &incarnation_cl,
                );
            }));
            senders.insert(peer, tx);
        }

        // Liveness clocks start at mesh formation, so a peer that never
        // sends anything still times out.
        {
            let mut st = state.lock();
            let now = Instant::now();
            for peer in senders.keys() {
                st.last_seen.insert(*peer, now);
            }
        }

        Ok(WirePort {
            id,
            num_nodes,
            config,
            senders,
            writers,
            inbox_rx,
            inbox_tx,
            state,
            stats,
            shutdown,
            epoch,
        })
    }
}

/// Dials `addr` with bounded exponential backoff, sending the
/// identifying [`Frame::Hello`] (tagged with the link's dial
/// generation) on success.
fn dial(
    addr: &WireAddr,
    config: &WireConfig,
    hello_as: NodeId,
    incarnation: u32,
) -> io::Result<WireStream> {
    let mut last_err = io::Error::other("no dial attempt made");
    for attempt in 0..=config.dial_retries {
        if attempt > 0 {
            thread::sleep(config.dial_backoff * 2u32.saturating_pow(attempt - 1));
        }
        let connected = match addr {
            WireAddr::Tcp(sa) => {
                TcpStream::connect_timeout(sa, config.connect_timeout).map(WireStream::Tcp)
            }
            WireAddr::Unix(path) => UnixStream::connect(path).map(WireStream::Unix),
        };
        match connected {
            Ok(mut stream) => {
                stream.tune(config.read_timeout);
                match write_frame(&mut stream, &Frame::Hello { id: hello_as, incarnation }) {
                    Ok(()) => return Ok(stream),
                    Err(e) => last_err = e,
                }
            }
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

/// Registers a Hello on the accepting side. A strictly higher
/// incarnation than the recorded one is a mid-run reconnect: the peer
/// survived its outage and is resuming, so any death evidence the
/// silence accrued is withdrawn and the rejoin is queued (the drive
/// loop turns it into a commit-forwarding round). Returns the link's
/// incarnation for the reader to remember.
fn register_hello(
    state: &Mutex<MeshState>,
    stats: &Mutex<NetStats>,
    peer: NodeId,
    incarnation: u32,
) -> u32 {
    let mut reconnected = false;
    {
        let mut st = state.lock();
        st.last_seen.insert(peer, Instant::now());
        let prev = st.incarnations.get(&peer).copied();
        if prev.is_none_or(|p| incarnation > p) {
            st.incarnations.insert(peer, incarnation);
        }
        if prev.is_some_and(|p| incarnation > p) {
            reconnected = true;
            st.dead.remove(&peer);
            st.confirm_at.remove(&peer);
            let was_reported = st.reported.remove(&peer);
            if st.suspected.remove(&peer) || was_reported {
                st.rejoin_events.push(peer);
            }
        }
    }
    if reconnected {
        stats.lock().record_recovery("reconnect");
    }
    incarnation
}

/// Inbound link: identify the peer from its Hello, then timestamp and
/// dispatch every frame, feeding inter-arrival gaps to the peer's phi
/// estimator. A link ending without a Bye marks the peer dead — unless
/// a newer-incarnation link has handshaked since, in which case this
/// is just the old link of a completed reconnect being torn down. Bye
/// marks the peer departed.
fn reader_loop(
    mut stream: WireStream,
    state: &Mutex<MeshState>,
    stats: &Mutex<NetStats>,
    inbox: &Sender<(NodeId, Event)>,
    epoch: &Mutex<Instant>,
    config: &WireConfig,
) {
    let (peer, link_incarnation) = match read_frame(&mut stream) {
        Ok(Frame::Hello { id, incarnation }) => {
            (id, register_hello(state, stats, id, incarnation))
        }
        _ => return, // not a mesh peer; drop the connection
    };
    let window = config.phi_window;
    let floor = config.heartbeat_interval.as_secs_f64();
    loop {
        match read_frame(&mut stream) {
            Ok(frame) => {
                let recv_us = i64::try_from(epoch.lock().elapsed().as_micros())
                    .unwrap_or(i64::MAX);
                if let Frame::Hello { id, incarnation } = &frame {
                    // A repeated Hello on an open link: keep the
                    // bookkeeping current but nothing else changes.
                    register_hello(state, stats, *id, *incarnation);
                    continue;
                }
                let now = Instant::now();
                let mut st = state.lock();
                if let Some(prev) = st.last_seen.insert(peer, now) {
                    let gap = now.saturating_duration_since(prev).as_secs_f64();
                    st.estimators
                        .entry(peer)
                        .or_insert_with(|| PhiEstimator::new(window, floor))
                        .observe(gap);
                }
                match frame {
                    Frame::Msg { from, sent_us, msg } => {
                        // One skew sample per protocol frame: one-way
                        // delay plus the sender's clock offset. Keep
                        // the minimum; the floor-latency crossing is
                        // the best offset bound available without
                        // round-trip probing.
                        let sample =
                            recv_us.saturating_sub(i64::try_from(sent_us).unwrap_or(i64::MAX));
                        st.skew_min
                            .entry(from)
                            .and_modify(|m| *m = (*m).min(sample))
                            .or_insert(sample);
                        drop(st);
                        let _ = inbox.send((from, Event::Msg(msg)));
                    }
                    Frame::Ready => {
                        st.ready.insert(peer);
                    }
                    Frame::Bye => {
                        st.departed.insert(peer);
                        return;
                    }
                    Frame::Heartbeat | Frame::Hello { .. } => {}
                }
            }
            Err(_) => {
                let mut st = state.lock();
                let superseded = st
                    .incarnations
                    .get(&peer)
                    .is_some_and(|cur| *cur > link_incarnation);
                if !st.departed.contains(&peer) && !superseded {
                    st.dead.insert(peer);
                }
                return;
            }
        }
    }
}

/// Outbound link: drain the FIFO channel into the stream, heartbeat
/// when idle, reconnect-and-resume on a broken pipe, and exit after
/// writing Bye (explicit or on channel close).
///
/// The reconnect rounds back off from [`WireConfig::reconnect_backoff`]
/// (doubling, [`WireConfig::dial_retries`] rounds); each successful
/// redial re-handshakes with a bumped-incarnation Hello and *replays
/// the in-flight frame*, then resumes draining the FIFO — the
/// undelivered outbound queue survives the outage intact, preserving
/// per-sender FIFO across the reconnect. Exhausting every round is
/// hard death evidence: the peer is marked dead for immediate
/// confirmation.
#[allow(clippy::too_many_arguments)]
fn writer_loop(
    own_id: NodeId,
    peer: NodeId,
    mut stream: WireStream,
    peer_addr: &WireAddr,
    config: &WireConfig,
    rx: &Receiver<Frame>,
    state: &Mutex<MeshState>,
    stats: &Mutex<NetStats>,
    incarnation: &AtomicU32,
) {
    loop {
        let frame = match rx.recv_timeout(config.heartbeat_interval) {
            Ok(f) => f,
            Err(channel::RecvTimeoutError::Timeout) => Frame::Heartbeat,
            Err(channel::RecvTimeoutError::Disconnected) => Frame::Bye,
        };
        let ending = matches!(frame, Frame::Bye);
        if write_frame(&mut stream, &frame).is_err() {
            // No point resuming a link whose peer is already known
            // gone (reader EOF, departure, or a confirmed report) —
            // reconnect rounds are for peers that might come back.
            let gone = {
                let st = state.lock();
                st.departed.contains(&peer)
                    || st.dead.contains(&peer)
                    || st.reported.contains(&peer)
            };
            if gone {
                if !ending {
                    state.lock().dead.insert(peer);
                }
                return;
            }
            let mut replayed = false;
            for round in 0..=config.dial_retries {
                thread::sleep(config.reconnect_backoff * 2u32.saturating_pow(round));
                let generation = incarnation.fetch_add(1, Ordering::Relaxed) + 1;
                // Single-attempt redial per round; the round loop owns
                // the backoff schedule.
                let single = WireConfig { dial_retries: 0, ..config.clone() };
                let Ok(mut s) = dial(peer_addr, &single, own_id, generation) else {
                    continue;
                };
                if write_frame(&mut s, &frame).is_ok() {
                    stream = s;
                    replayed = true;
                    let mut stats = stats.lock();
                    stats.record_recovery("reconnect");
                    if !matches!(frame, Frame::Heartbeat) {
                        stats.record_recovery("replayed_frame");
                    }
                    break;
                }
            }
            if !replayed {
                // Every reconnect round exhausted: hard evidence the
                // peer is gone for good.
                state.lock().dead.insert(peer);
                return;
            }
        }
        if ending {
            let _ = stream.flush();
            return;
        }
    }
}

/// One node's endpoint in the socket mesh. Implements [`FifoPort`], so
/// [`caex::drive::drive_node`] treats it exactly like the in-process
/// transport — plus [`WirePort::barrier`] for cross-process start
/// alignment.
pub struct WirePort {
    id: NodeId,
    num_nodes: u32,
    config: WireConfig,
    senders: HashMap<NodeId, Sender<Frame>>,
    /// Writer threads, joined on drop so every queued frame — above
    /// all the closing [`Frame::Bye`] — reaches the socket before the
    /// process may exit. Without the join, a fast exit races the Byes
    /// and peers misread the close as a crash.
    writers: Vec<thread::JoinHandle<()>>,
    inbox_rx: Receiver<(NodeId, Event)>,
    /// Keeps the inbox open even when every reader has exited, so the
    /// drive loop terminates on its idle rule, not on a spurious
    /// disconnect. Also the self-delivery path.
    inbox_tx: Sender<(NodeId, Event)>,
    state: Arc<Mutex<MeshState>>,
    stats: Arc<Mutex<NetStats>>,
    shutdown: Arc<AtomicBool>,
    /// The clock zero that `sent_us` stamps and skew samples are
    /// measured against. Set at mesh formation; re-anchored by
    /// [`WirePort::rebase_epoch`] after the start barrier so every
    /// process measures from (approximately) the same instant.
    epoch: Arc<Mutex<Instant>>,
}

impl fmt::Debug for WirePort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WirePort")
            .field("id", &self.id)
            .field("num_nodes", &self.num_nodes)
            .finish()
    }
}

impl WirePort {
    /// This port's node id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of nodes in the mesh.
    #[must_use]
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Shared statistics handle (protocol messages only — heartbeats
    /// and other control frames are not counted).
    #[must_use]
    pub fn stats(&self) -> Arc<Mutex<NetStats>> {
        Arc::clone(&self.stats)
    }

    /// Start barrier: broadcasts [`Frame::Ready`] and blocks until
    /// every peer's Ready has arrived. Scenario step offsets measured
    /// from the instant this returns are aligned across processes to
    /// within one message propagation.
    ///
    /// # Errors
    ///
    /// Reports the peers still missing at `timeout` (including peers
    /// that died while the barrier waited).
    pub fn barrier(&self, timeout: Duration) -> Result<(), String> {
        for tx in self.senders.values() {
            let _ = tx.send(Frame::Ready);
        }
        let deadline = Instant::now() + timeout;
        loop {
            {
                let st = self.state.lock();
                if self.senders.keys().all(|p| st.ready.contains(p)) {
                    return Ok(());
                }
                if Instant::now() > deadline {
                    let missing: Vec<String> = self
                        .senders
                        .keys()
                        .filter(|p| !st.ready.contains(p))
                        .map(ToString::to_string)
                        .collect();
                    return Err(format!("barrier timed out waiting for {}", missing.join(", ")));
                }
            }
            thread::sleep(Duration::from_millis(2));
        }
    }

    fn send_event(&self, to: NodeId, event: Event) -> bool {
        let kind = event.kind();
        if to == self.id {
            // Self-delivery short-circuits the sockets.
            let ok = self.inbox_tx.send((self.id, event)).is_ok();
            let mut stats = self.stats.lock();
            if ok {
                stats.record_send(kind);
                stats.record_channel(self.id, to);
            } else {
                stats.record_drop(kind);
            }
            return ok;
        }
        let Event::Msg(msg) = event else {
            // Local events never cross the wire; a caller handing one
            // over is accounted as a drop, not a panic.
            self.stats.lock().record_drop(kind);
            return false;
        };
        let Some(tx) = self.senders.get(&to) else {
            self.stats.lock().record_drop(kind);
            return false;
        };
        let sent_us = u64::try_from(self.epoch.lock().elapsed().as_micros()).unwrap_or(u64::MAX);
        let ok = tx.send(Frame::Msg { from: self.id, sent_us, msg }).is_ok();
        let mut stats = self.stats.lock();
        if ok {
            stats.record_send(kind);
            stats.record_channel(self.id, to);
        } else {
            stats.record_drop(kind);
        }
        ok
    }

    /// Re-anchors the `sent_us` clock zero to `at` and discards the
    /// skew samples collected so far. Call it right after
    /// [`WirePort::barrier`] returns, with the same `Instant` the
    /// harness uses as its observation epoch — then skew estimates
    /// are directly the per-peer offset between observation clocks.
    pub fn rebase_epoch(&self, at: Instant) {
        *self.epoch.lock() = at;
        self.state.lock().skew_min.clear();
    }

    /// Per-peer skew estimates: the minimum observed
    /// `recv_local_us − sent_us` over every protocol frame received
    /// from that peer since the last [`WirePort::rebase_epoch`].
    /// The value is one-way floor delay plus the peer's clock offset
    /// relative to this process; subtracting the symmetric estimate
    /// (or assuming symmetric floor delay) isolates the offset.
    /// Sorted by peer id; peers that never sent are absent.
    #[must_use]
    pub fn skew_estimates(&self) -> Vec<(NodeId, i64)> {
        let st = self.state.lock();
        let mut v: Vec<(NodeId, i64)> = st.skew_min.iter().map(|(p, s)| (*p, *s)).collect();
        v.sort_unstable();
        v
    }

    /// One failure-detector poll: scores every monitored peer's
    /// current silence as φ and walks the `Alive → Suspected →
    /// Confirmed` ladder, queueing the transitions for the three
    /// `take_*` drains.
    ///
    /// Confirmation requires hard death evidence (reader EOF without a
    /// Bye, or a writer's reconnect rounds exhausted) *or* φ ≥
    /// [`WireConfig::phi_confirm`] held across two polls at least one
    /// heartbeat apart — a freshly `SIGCONT`ed process polls with
    /// uniformly stale `last_seen` clocks, and the grace poll gives
    /// its readers one heartbeat to drain the buffered evidence that
    /// everyone is actually fine.
    fn poll_detector(&self) {
        let now = Instant::now();
        let hb = self.config.heartbeat_interval;
        let floor = hb.as_secs_f64();
        let mut flaps = 0u64;
        {
            let mut st = self.state.lock();
            for peer in self.senders.keys() {
                if st.departed.contains(peer) || st.reported.contains(peer) {
                    continue;
                }
                let hard_dead = st.dead.contains(peer);
                let silence = st
                    .last_seen
                    .get(peer)
                    .map(|seen| now.duration_since(*seen).as_secs_f64())
                    .unwrap_or(0.0);
                let phi = st
                    .estimators
                    .get(peer)
                    .map_or(silence / (floor * std::f64::consts::LN_10), |e| {
                        e.phi(silence)
                    });
                // Suspicion level: informational, fully reversible.
                if hard_dead || phi >= self.config.phi_suspect {
                    if st.suspected.insert(*peer) {
                        st.suspect_events.push(*peer);
                    }
                } else if st.suspected.remove(peer) {
                    st.rejoin_events.push(*peer);
                    flaps += 1;
                }
                // Confirmation: hard evidence now, accrual on the
                // second poll.
                let confirmed = if hard_dead {
                    true
                } else if phi >= self.config.phi_confirm {
                    match st.confirm_at.get(peer) {
                        Some(first) => now.duration_since(*first) >= hb,
                        None => {
                            st.confirm_at.insert(*peer, now);
                            false
                        }
                    }
                } else {
                    st.confirm_at.remove(peer);
                    false
                };
                if confirmed {
                    st.reported.insert(*peer);
                    st.suspected.remove(peer);
                    st.confirm_at.remove(peer);
                    st.crashed_events.push(*peer);
                }
            }
        }
        if flaps > 0 {
            let mut stats = self.stats.lock();
            for _ in 0..flaps {
                stats.record_recovery("suspicion_flap");
            }
        }
    }

    fn recv_event(&self, timeout: Duration) -> Result<(NodeId, Event), RecvTimeoutError> {
        match self.inbox_rx.recv_timeout(timeout) {
            Ok((from, event)) => {
                self.stats.lock().record_delivery(event.kind());
                Ok((from, event))
            }
            Err(channel::RecvTimeoutError::Timeout) => Err(RecvTimeoutError::Timeout),
            Err(channel::RecvTimeoutError::Disconnected) => Err(RecvTimeoutError::Disconnected),
        }
    }
}

impl FifoPort<Event> for WirePort {
    fn id(&self) -> NodeId {
        self.id
    }

    fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    fn send(&self, to: NodeId, payload: Event) -> bool {
        self.send_event(to, payload)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(NodeId, Event), RecvTimeoutError> {
        self.recv_event(timeout)
    }

    fn take_crashed(&self) -> Vec<NodeId> {
        self.poll_detector();
        let mut crashed = std::mem::take(&mut self.state.lock().crashed_events);
        crashed.sort_unstable();
        crashed
    }

    fn take_suspected(&self) -> Vec<NodeId> {
        self.poll_detector();
        let mut suspected = std::mem::take(&mut self.state.lock().suspect_events);
        suspected.sort_unstable();
        suspected
    }

    fn take_rejoined(&self) -> Vec<NodeId> {
        self.poll_detector();
        let mut rejoined = std::mem::take(&mut self.state.lock().rejoin_events);
        rejoined.sort_unstable();
        rejoined
    }

    fn drain_undelivered(&self) -> usize {
        let mut drained = 0;
        while let Ok((_, event)) = self.inbox_rx.try_recv() {
            self.stats.lock().record_drop(event.kind());
            drained += 1;
        }
        drained
    }
}

impl Drop for WirePort {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for tx in self.senders.values() {
            let _ = tx.send(Frame::Bye);
        }
        // Block until every writer has flushed its Bye — the graceful
        // departure must hit the wire before this process can exit.
        // Readers need no join: they exit with the peer's close.
        for writer in self.writers.drain(..) {
            let _ = writer.join();
        }
    }
}
