//! Offline stand-in for `serde`.
//!
//! The crates.io registry is unreachable in this build environment, and
//! the workspace uses serde purely as a forward-compatibility marker
//! (`#[derive(Serialize, Deserialize)]` on wire/report types — there is
//! no runtime serialisation anywhere). This shim keeps those derives
//! compiling: the traits are empty markers with blanket implementations
//! and the derive macros expand to nothing.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
