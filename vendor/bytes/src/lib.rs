//! Offline stand-in for `bytes` 1.x, covering the surface the wire
//! codec uses: `BytesMut` as an append-only builder with little-endian
//! put methods, `freeze()` into a cheaply cloneable [`Bytes`], and the
//! [`Buf`]/[`BufMut`] cursor traits for decoding.

use std::ops::{Deref, Range};
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer with a read cursor.
///
/// Cloning shares the underlying allocation; [`Buf`] methods consume
/// from the front by advancing the view, as in the real crate.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of the current readable bytes (indices are relative
    /// to the current view, as in the real crate).
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds of {} readable bytes",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copy the readable bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: data.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The readable contiguous region.
    fn chunk(&self) -> &[u8];

    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "get_u8 past end of buffer");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        assert!(self.remaining() >= 2, "get_u16_le past end of buffer");
        let v = u16::from_le_bytes([self.chunk()[0], self.chunk()[1]]);
        self.advance(2);
        v
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "get_u32_le past end of buffer");
        let c = self.chunk();
        let v = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "get_u64_le past end of buffer");
        let c = self.chunk();
        let v = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }

    /// Consume `len` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "copy_to_bytes past end of buffer");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "copy_to_bytes past end of buffer");
        let out = self.slice(0..len);
        self.start += len;
        out
    }
}

/// A growable byte buffer for encoding.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut {
            data: data.to_vec(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, Bytes, BytesMut};

    #[test]
    fn round_trip_and_cursor() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_slice(b"xy");
        let bytes = buf.freeze();
        assert_eq!(bytes.len(), 9);

        let mut cur = bytes.clone();
        assert_eq!(cur.get_u8(), 0xAB);
        assert_eq!(cur.get_u16_le(), 0x1234);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.copy_to_bytes(2).to_vec(), b"xy");
        assert!(!cur.has_remaining());
        // The original is untouched (clone shares storage, not cursor).
        assert_eq!(bytes.len(), 9);
    }

    #[test]
    fn slice_is_relative_to_view() {
        let bytes = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = bytes.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        assert_eq!(&mid.slice(1..2)[..], &[3]);
    }
}
