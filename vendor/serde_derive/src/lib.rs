//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a
//! forward-compatibility marker — nothing is serialised at runtime — so
//! the derives expand to nothing. The companion `serde` shim provides
//! blanket implementations of the marker traits.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; the `serde` shim blanket-implements the trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; the `serde` shim blanket-implements the trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
