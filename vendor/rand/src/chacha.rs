//! ChaCha block function with a 64-bit counter (DJB variant), as used
//! by `rand_chacha` 0.3 for `StdRng` (12 rounds).

/// ChaCha keystream state: 256-bit key, 64-bit block counter, 64-bit
/// nonce (always zero for `seed_from_u64` construction).
#[derive(Debug, Clone)]
pub(crate) struct ChaCha {
    key: [u32; 8],
    counter: u64,
    rounds: u32,
}

impl ChaCha {
    pub(crate) fn new(seed: &[u8; 32], rounds: u32) -> Self {
        assert!(rounds % 2 == 0, "ChaCha rounds come in pairs");
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha {
            key,
            counter: 0,
            rounds,
        }
    }

    /// Fill `out` with the next four keystream blocks (64 words).
    pub(crate) fn generate(&mut self, out: &mut [u32; 64]) {
        for block in 0..4 {
            let words = self.block(self.counter.wrapping_add(block));
            out[block as usize * 16..block as usize * 16 + 16].copy_from_slice(&words);
        }
        self.counter = self.counter.wrapping_add(4);
    }

    fn block(&self, counter: u64) -> [u32; 16] {
        let mut state = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter as u32,
            (counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..self.rounds / 2 {
            // Column round.
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(initial.iter()) {
            *s = s.wrapping_add(*i);
        }
        state
    }
}

fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::ChaCha;

    /// DJB's original ChaCha20 test vector: all-zero key and nonce,
    /// counter 0 — validates the block function, word serialisation
    /// and counter layout (the 12-round variant differs only in the
    /// loop count).
    #[test]
    fn chacha20_zero_key_first_block() {
        let mut core = ChaCha::new(&[0u8; 32], 20);
        let mut out = [0u32; 64];
        core.generate(&mut out);
        let mut bytes = Vec::with_capacity(64);
        for w in &out[..16] {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let expected: [u8; 32] = [
            0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90, 0x40, 0x5d, 0x6a, 0xe5, 0x53, 0x86,
            0xbd, 0x28, 0xbd, 0xd2, 0x19, 0xb8, 0xa0, 0x8d, 0xed, 0x1a, 0xa8, 0x36, 0xef, 0xcc,
            0x8b, 0x77, 0x0d, 0xc7,
        ];
        assert_eq!(&bytes[..32], &expected);
    }

    /// The four generated blocks advance the counter sequentially.
    #[test]
    fn blocks_use_sequential_counters() {
        let mut core = ChaCha::new(&[7u8; 32], 12);
        let mut first = [0u32; 64];
        core.generate(&mut first);
        let mut again = ChaCha::new(&[7u8; 32], 12);
        again.counter = 1;
        let mut shifted = [0u32; 64];
        again.generate(&mut shifted);
        assert_eq!(&first[16..32], &shifted[..16]);
    }
}
