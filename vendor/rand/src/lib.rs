//! Offline stand-in for `rand` 0.8, covering the API surface this
//! workspace uses: `Rng::{gen_range, gen_bool}`, `SeedableRng::seed_from_u64`
//! and `rngs::StdRng`.
//!
//! **Bit-exact with rand 0.8.5 for the calls the simulator makes.**
//! Several integration tests pin latency-draw-dependent outcomes
//! (message totals under jittered seeds, golden envelopes), so the shim
//! reproduces the real crate's byte stream exactly:
//!
//! - `StdRng` is ChaCha12 (as in `rand_chacha` 0.3), buffered four
//!   blocks at a time exactly like `rand_core`'s `BlockRng`;
//! - `seed_from_u64` expands the seed with the same PCG32 sequence as
//!   `rand_core` 0.6;
//! - `gen_range` over `u64` ranges uses rand 0.8.5's widening-multiply
//!   rejection sampler, `gen_range` over `f64` uses its `[1, 2)`
//!   mantissa-fill sampler, and `gen_bool` uses its fixed-point
//!   Bernoulli — each consuming one `u64` draw per accepted sample.
//!
//! Integer types other than `u64`/`usize` fall back to a simple modulo
//! sampler (in-bounds but not stream-identical to the real crate);
//! nothing in the workspace draws them from `StdRng`.

use std::ops::{Range, RangeInclusive};

mod chacha;

/// Core randomness source: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that a uniform value can be sampled from.
pub trait SampleRange<T> {
    /// Sample a single uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// rand 0.8.5 `UniformInt::<u64>::sample_single_inclusive`: widening
/// multiply with rejection of the biased zone.
fn sample_u64_inclusive<R: RngCore + ?Sized>(lo: u64, hi: u64, rng: &mut R) -> u64 {
    assert!(lo <= hi, "cannot sample empty range");
    let range = hi.wrapping_sub(lo).wrapping_add(1);
    if range == 0 {
        // Full domain.
        return rng.next_u64();
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (range as u128);
        let (m_hi, m_lo) = ((m >> 64) as u64, m as u64);
        if m_lo <= zone {
            return lo.wrapping_add(m_hi);
        }
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        sample_u64_inclusive(self.start, self.end - 1, rng)
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        sample_u64_inclusive(*self.start(), *self.end(), rng)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        sample_u64_inclusive(self.start as u64, (self.end - 1) as u64, rng) as usize
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        sample_u64_inclusive(*self.start() as u64, *self.end() as u64, rng) as usize
    }
}

macro_rules! impl_fallback_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi - lo) as u128;
                (lo + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                let r = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    (rng.next_u64() as u128) % span
                };
                (lo + r as i128) as $t
            }
        }
    )*};
}

impl_fallback_int_sample_range!(u8, u16, u32, i8, i16, i32, i64, isize);

/// rand 0.8.5 `UniformFloat::<f64>::sample_single`: fill the mantissa
/// to get a value in `[1, 2)`, shift to `[0, 1)`, scale, and reject the
/// (rare) rounding overshoot onto `high`.
fn sample_f64<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
    assert!(lo < hi, "cannot sample empty range");
    let scale = hi - lo;
    loop {
        let mantissa = rng.next_u64() >> 12;
        let value1_2 = f64::from_bits(mantissa | (1023u64 << 52));
        let value0_1 = value1_2 - 1.0;
        let res = value0_1 * scale + lo;
        if res < hi {
            return res;
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        sample_f64(self.start, self.end, rng)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (including unsized receivers, matching rand 0.8's
/// `R: Rng + ?Sized` idiom).
pub trait Rng: RngCore {
    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (rand 0.8.5 Bernoulli: fixed-point
    /// compare against one `u64` draw; `p == 1.0` draws nothing).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        if p == 1.0 {
            return true;
        }
        let p_int = (p * (2.0 * (1u64 << 63) as f64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use crate::chacha::ChaCha;
    use crate::{RngCore, SeedableRng};

    /// The standard generator: ChaCha12, bit-compatible with rand 0.8.5.
    ///
    /// Buffers four 64-byte blocks (64 `u32` words) per refill and
    /// serves draws with `rand_core::BlockRng`'s exact indexing rules.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        core: ChaCha,
        results: [u32; 64],
        index: usize,
    }

    impl StdRng {
        fn refill(&mut self) {
            self.core.generate(&mut self.results);
            self.index = 0;
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= self.results.len() {
                self.refill();
            }
            let v = self.results[self.index];
            self.index += 1;
            v
        }

        fn next_u64(&mut self) -> u64 {
            let len = self.results.len();
            if self.index < len - 1 {
                let lo = self.results[self.index];
                let hi = self.results[self.index + 1];
                self.index += 2;
                (u64::from(hi) << 32) | u64::from(lo)
            } else if self.index >= len {
                self.refill();
                let lo = self.results[0];
                let hi = self.results[1];
                self.index = 2;
                (u64::from(hi) << 32) | u64::from(lo)
            } else {
                let lo = self.results[len - 1];
                self.refill();
                let hi = self.results[0];
                self.index = 1;
                (u64::from(hi) << 32) | u64::from(lo)
            }
        }
    }

    impl SeedableRng for StdRng {
        /// rand_core 0.6's `seed_from_u64`: a PCG32 stream fills the
        /// 32-byte ChaCha key four bytes at a time.
        fn seed_from_u64(mut state: u64) -> Self {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(4) {
                state = state.wrapping_mul(MUL).wrapping_add(INC);
                let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
                let rot = (state >> 59) as u32;
                chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
            }
            StdRng {
                core: ChaCha::new(&seed, 12),
                results: [0; 64],
                index: 64, // force a refill on first use
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..300 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!(f > 0.0 && f < 1.0);
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn unit_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }
}
