//! Offline stand-in for `parking_lot` 0.12, covering the `Mutex`
//! surface this workspace uses: infallible `lock()` (no poison
//! plumbing) and `into_inner()`.
//!
//! Backed by `std::sync::Mutex`; a poisoned lock is recovered
//! transparently, matching parking_lot's no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock whose `lock()` never returns an error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => MutexGuard(g),
            Err(poisoned) => MutexGuard(poisoned.into_inner()),
        }
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&*self.lock()).finish()
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_and_into_inner() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let m = Arc::try_unwrap(m).map(Mutex::into_inner).unwrap();
        assert_eq!(m, 8000);
    }
}
