//! Offline stand-in for `proptest` 1.x.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`/
//! `boxed`, range and `any` strategies, tuple composition,
//! `collection::vec`, `option::of`, `Just`, `prop_oneof!`, the
//! `proptest!` test macro and the `prop_assert*` assertion macros.
//!
//! Differences from the real crate: inputs are generated from a fixed
//! deterministic seed (reproducible across runs) and failing cases are
//! *not* shrunk — the panic carries the case number instead. That is a
//! deliberate trade for a zero-dependency offline shim; the properties
//! themselves run unchanged.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner;

use test_runner::TestRng;

/// A generator of test values.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Produce one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Produce a value, then run a second strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

/// A type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternative strategies
/// (the engine behind `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the alternatives; panics when empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[idx].new_value(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi - lo) as u128;
                let r = (rng.next_u64() as u128) % span;
                (lo + r as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                let r = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    (rng.next_u64() as u128) % span
                };
                (lo + r as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for the full value domain of a type; see [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

/// Generate any value of `T` (`any::<bool>()`, `any::<u64>()`, …).
pub fn any<T>() -> AnyStrategy<T>
where
    AnyStrategy<T>: Strategy<Value = T>,
{
    AnyStrategy(PhantomData)
}

impl Strategy for AnyStrategy<bool> {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_int {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Simple pattern strategies: a `&str` is interpreted as a regex of the
/// form `.{lo,hi}` yielding random printable ASCII strings of length
/// `lo..=hi`. Other patterns are rejected — extend as needed.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or_else(|| {
            panic!("proptest shim: unsupported string pattern {self:?} (expected \".{{lo,hi}}\")")
        });
        let span = (hi - lo + 1) as u64;
        let len = lo + (rng.next_u64() % span) as usize;
        (0..len)
            .map(|_| {
                // Printable ASCII, 0x20..=0x7E.
                char::from(0x20 + (rng.next_u64() % 95) as u8)
            })
            .collect()
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    (lo <= hi).then_some((lo, hi))
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `None` or `Some` of the inner strategy.
    pub struct OptionStrategy<S>(S);

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.0.new_value(rng))
            }
        }
    }
}

/// The glob-import module used by every property-test file.
pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among alternatives: `prop_oneof![s1, s2, ...]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert inside a property; panics (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg_pat:pat in $arg_strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                $crate::test_runner::run_cases(
                    config,
                    ($($arg_strategy,)+),
                    |($($arg_pat,)+)| $body,
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @with_config ($crate::test_runner::Config::default()) $($rest)* }
    };
}
