//! Test-runner configuration and the deterministic RNG behind the shim.

use crate::Strategy;

/// Per-test configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Matches real proptest's default; PROPTEST_CASES overrides it,
        // which CI can use to dial effort up or down.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Config { cases }
    }
}

/// Deterministic SplitMix64 generator feeding the strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Drive `test` over `config.cases` generated inputs.
///
/// The seed is fixed so failures reproduce exactly; the panic message
/// is augmented with the failing case number via an unwind hook-free
/// wrapper (the case number is printed before re-raising).
pub fn run_cases<S: Strategy>(config: Config, strategy: S, mut test: impl FnMut(S::Value)) {
    let mut rng = TestRng::from_seed(0xCAE0_5EED_0000_0001);
    for case in 0..config.cases {
        let value = strategy.new_value(&mut rng);
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
        if let Err(panic) = outcome {
            eprintln!("proptest shim: property failed at case {case}/{}", config.cases);
            std::panic::resume_unwind(panic);
        }
    }
}
