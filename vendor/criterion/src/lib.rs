//! Offline stand-in for `criterion` 0.5, covering the harness surface
//! the benches use: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId` and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical engine it runs a short
//! calibrated loop and prints one median-time line per benchmark —
//! enough to compare scaling shapes offline. Passing `--test` (as
//! `cargo test --benches` does) runs each benchmark once.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Apply command-line configuration (accepted and ignored, except
    /// `--test`, which switches to single-iteration smoke mode).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.test_mode, |b| f(b));
        self
    }

    /// Print the closing summary (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a closure under `<group>/<name>`.
    pub fn bench_function(&mut self, name: impl Display, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.criterion.test_mode, |b| f(b));
        self
    }

    /// Benchmark a closure parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.label);
        run_one(&full, self.criterion.test_mode, |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `new("name", 32)` renders as `name/32`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// `from_parameter(32)` renders as just `32`; the group name alone
    /// identifies the function.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    median_ns: Option<f64>,
}

impl Bencher {
    /// Time `f`, storing a median-of-samples estimate.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        // Calibrate the per-iteration count to ~2ms, then sample.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 24 {
                break;
            }
            iters *= 2;
        }
        let mut samples: Vec<f64> = (0..9)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = Some(samples[samples.len() / 2]);
    }
}

fn run_one(name: &str, test_mode: bool, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        test_mode,
        median_ns: None,
    };
    f(&mut bencher);
    match bencher.median_ns {
        Some(ns) if !test_mode => println!("{name:<50} {}", format_ns(ns)),
        _ => {
            if test_mode {
                println!("{name:<50} ok (test mode)");
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs/iter", ns / 1_000.0)
    } else {
        format!("{:8.3} ms/iter", ns / 1_000_000.0)
    }
}

/// Bundle benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
