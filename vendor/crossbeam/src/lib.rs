//! Offline stand-in for `crossbeam` 0.8, covering the `channel` module
//! surface this workspace uses (`unbounded`, `Sender`, `Receiver`,
//! `recv_timeout`, `try_recv`).
//!
//! Backed by `std::sync::mpsc`, whose `Sender` has been `Sync` since
//! Rust 1.72 — which is what lets the threaded transport share one
//! `Arc<Vec<Sender<_>>>` across node threads exactly as it would with
//! real crossbeam channels.

/// Multi-producer channels (the `crossbeam-channel` subset in use).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    use std::fmt;

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send, failing only when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Block with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// The message could not be delivered: all receivers disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// All senders disconnected while waiting.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of a timed receive.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    /// Outcome of a non-blocking receive.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn shared_sender_across_threads() {
        let (tx, rx) = channel::unbounded::<u32>();
        let tx = Arc::new(tx);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = Arc::clone(&tx);
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<u32> = (0..4)
            .map(|_| rx.recv_timeout(Duration::from_secs(1)).unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn timeout_and_disconnect_are_distinguished() {
        let (tx, rx) = channel::unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }
}
